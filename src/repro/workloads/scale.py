"""Population scale-out: one event kernel per worker process.

The windowed :class:`~repro.engine.sharded.ShardedSimulator` is the
determinism mechanism — it proves, in process, that a partitioned event
execution reproduces the single-kernel run bit-for-bit.  This module is
the throughput-and-memory mechanism: it splits a large population into
*islands* (one per shard), builds each island as a complete scenario
with its own :class:`~repro.engine.kernel.EventKernel`, and runs the
islands in parallel worker processes via :mod:`multiprocessing`.

Islands are independent replicas of the community ecosystem — each has
its own publishers, corpus sample and query stream, seeded
deterministically per island — so aggregate counters are plain sums of
per-island counters and therefore independent of worker scheduling:
``parallel=True`` and ``parallel=False`` produce identical totals for a
fixed seed (pinned by the scale determinism test).  This is the classic
island model of parallel simulation; cross-island links would need the
windowed barrier to span processes, which stays in-process for now (see
ARCHITECTURE.md "Sharding").

Memory is the other half: with one process per island, each worker's
peak RSS covers only its slice of the population, which is what the P2
benchmark charts against population × shard count.
"""

from __future__ import annotations

import multiprocessing
import os
import resource
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Optional

from repro.workloads.scenario import ScenarioConfig, build_scenario

_KILO = 1 if sys.platform == "darwin" else 1024

#: per-island seeds stride by a prime so islands never share workload
#: randomness yet remain a pure function of (base seed, island index)
_SEED_STRIDE = 101


def _self_peak_rss_bytes() -> int:
    """This process's peak resident set, in bytes.

    Linux reads ``VmHWM`` instead of ``getrusage``'s ``ru_maxrss``
    because the latter inherits the parent's footprint across
    ``execve`` (spawned pool workers are fork+exec underneath) — a
    large parent would become every island's reported floor.
    """
    try:
        with open("/proc/self/status", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        pass
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * _KILO


@dataclass
class IslandReport:
    """Counters one island produced."""

    island: int
    peers: int
    queries: int
    results: int
    messages: int
    bytes: int
    downloads: int
    wall_s: float
    peak_rss_bytes: int
    messages_by_type: dict[str, int] = field(default_factory=dict)


@dataclass
class PopulationReport:
    """Aggregate of one scale-out run (sums are scheduling-independent)."""

    population: int
    shards: int
    parallel: bool
    protocol: str
    seed: int
    wall_s: float
    islands: list[IslandReport] = field(default_factory=list)

    @property
    def messages(self) -> int:
        return sum(island.messages for island in self.islands)

    @property
    def bytes(self) -> int:
        return sum(island.bytes for island in self.islands)

    @property
    def queries(self) -> int:
        return sum(island.queries for island in self.islands)

    @property
    def results(self) -> int:
        return sum(island.results for island in self.islands)

    @property
    def downloads(self) -> int:
        return sum(island.downloads for island in self.islands)

    @property
    def messages_per_s(self) -> float:
        return self.messages / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def peak_rss_bytes(self) -> int:
        """Largest single-process high-water mark of the run."""
        return max((island.peak_rss_bytes for island in self.islands), default=0)

    def counters(self) -> dict[str, int]:
        """The order-independent aggregate the determinism test pins."""
        merged: dict[str, int] = {}
        for island in self.islands:
            for message_type, count in island.messages_by_type.items():
                merged[message_type] = merged.get(message_type, 0) + count
        return {
            "messages": self.messages,
            "bytes": self.bytes,
            "queries": self.queries,
            "results": self.results,
            "downloads": self.downloads,
            **{f"type:{key}": value for key, value in sorted(merged.items())},
        }


def island_sizes(population: int, shards: int) -> list[int]:
    """Split ``population`` into ``shards`` near-equal island sizes."""
    if population < 2 * shards:
        raise ValueError(
            f"population {population} too small for {shards} islands "
            "(each needs at least two peers)")
    base, spill = divmod(population, shards)
    return [base + (1 if island < spill else 0) for island in range(shards)]


def island_config(*, island: int, peers: int, protocol: str, seed: int,
                  queries: int, **overrides) -> dict:
    """Config payload of one island (picklable; workers rebuild it)."""
    publishers = max(1, min(10, peers // 10))
    members = max(publishers, min(25, peers // 4))
    payload = dict(
        protocol=protocol,
        peers=peers,
        publishers=publishers,
        members=members,
        corpus_size=60,
        queries=queries,
        ttl=6,
        concurrency=8,
        query_interarrival_ms=20.0,
        seed=seed + _SEED_STRIDE * island,
    )
    payload.update(overrides)
    return payload


def _run_island(payload: dict) -> dict:
    """Worker entry: build and run one island, return plain counters."""
    island = payload.pop("island")
    max_results = payload.pop("max_results", 50)
    if payload.pop("_hard_crash", False):
        # Test hook: die the way a real worker does (OOM kill, segfault
        # in an extension) — no exception, no result, just a dead pid.
        os._exit(13)
    config = ScenarioConfig(**payload)
    started = time.perf_counter()
    scenario = build_scenario(config)
    counts = scenario.run_queries(max_results=max_results)
    wall = time.perf_counter() - started
    stats = scenario.network.stats
    return {
        "island": island,
        "peers": config.peers,
        "queries": len(counts),
        "results": sum(counts),
        "messages": sum(stats.messages_by_type.values()),
        "bytes": sum(stats.bytes_by_type.values()),
        "downloads": len(stats.download_records),
        "wall_s": wall,
        "peak_rss_bytes": _self_peak_rss_bytes(),
        "messages_by_type": dict(stats.messages_by_type),
    }


def run_population(population: int, *, shards: int = 1, protocol: str = "gnutella",
                   seed: int = 0, queries_per_island: int = 16,
                   parallel: bool = True, max_results: int = 50,
                   processes: Optional[int] = None,
                   **overrides) -> PopulationReport:
    """Run a population of ``population`` peers split across ``shards``
    islands, one worker process per island when ``parallel``.

    ``parallel=False`` runs the same islands sequentially in this
    process — same totals, one process's memory — which is both the
    determinism check and the RSS baseline the P2 benchmark compares
    against.  Extra keyword arguments override per-island
    :class:`ScenarioConfig` fields (e.g. ``live_membership=True``).
    """
    sizes = island_sizes(population, shards)
    payloads = [
        island_config(island=island, peers=size, protocol=protocol, seed=seed,
                      queries=queries_per_island, **overrides)
        | {"island": island, "max_results": max_results}
        for island, size in enumerate(sizes)
    ]
    started = time.perf_counter()
    if parallel:
        # Clean-footprint workers: each island's peak-RSS sample must
        # reflect that island alone, and a child forked from *this*
        # process inherits its resident pages as a VmHWM floor.
        # ``forkserver`` is preferred — children fork from a small,
        # freshly-started server process (clean footprint, none of this
        # process's high-water mark) without paying spawn's per-worker
        # interpreter boot — with ``spawn`` as the fallback and plain
        # ``fork`` only where nothing better exists.  A single-island
        # run still goes through the pool for the same reason — the
        # parent's own high-water mark belongs to whoever ran before us.
        methods = multiprocessing.get_all_start_methods()
        method = next(name for name in ("forkserver", "spawn", "fork")
                      if name in methods)
        ctx = multiprocessing.get_context(method)
        # A futures pool, not multiprocessing.Pool: when a worker dies
        # without reporting a result (OOM kill, segfault), Pool.map
        # waits forever on the lost task while BrokenProcessPool fails
        # the whole run loudly.
        try:
            with ProcessPoolExecutor(max_workers=processes or shards,
                                     mp_context=ctx) as pool:
                raw = list(pool.map(_run_island, payloads))
        except BrokenProcessPool as error:
            raise RuntimeError(
                f"island worker crashed before reporting its results "
                f"(population={population}, shards={shards}): the pool is "
                f"broken, not hung — see the worker's stderr for the cause"
            ) from error
    else:
        raw = [_run_island(dict(payload)) for payload in payloads]
    wall = time.perf_counter() - started
    report = PopulationReport(population=population, shards=shards,
                              parallel=parallel,
                              protocol=protocol, seed=seed, wall_s=wall)
    report.islands = [IslandReport(**island) for island in raw]
    return report
