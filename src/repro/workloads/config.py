"""Grouped configuration objects for the scenario/network API.

The knob surface grew one flat keyword at a time — ~30 fields on
:class:`~repro.workloads.scenario.ScenarioConfig` and a long
``PeerNetwork.__init__`` signature — so the related knobs are grouped
into small frozen dataclasses: caching, membership, reliability and
routing.  Both spellings are accepted everywhere and are documented as
interchangeable:

* **flat** — ``ScenarioConfig(result_caching=True, cache_ttl_ms=400.0)``
  keeps working unchanged;
* **grouped** — ``ScenarioConfig(cache=CacheConfig(enabled=True,
  ttl_ms=400.0))`` normalizes into the same flat attributes.

Normalization is strict: passing a group *and* an explicit flat knob of
the same group is ambiguous and raises ``ValueError`` rather than
silently preferring one.  After normalization both spellings are
materialized — flat attributes for the downstream code that reads them,
canonical group objects for callers that want to forward a bundle —
and all value validation lives here, in the groups' ``__post_init__``,
so the flat and grouped paths cannot drift apart.

Fault injection stays a top-level ``faults=FaultPlan(...)`` knob: a
fault plan is a *workload* description (what the environment does to
the run), not a configuration of the network stack.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Optional

__all__ = [
    "CacheConfig",
    "MembershipConfig",
    "ReliabilityConfig",
    "RoutingConfig",
    "resolve_group",
]


@dataclass(frozen=True)
class CacheConfig:
    """Query-result caching (the ``result_caching`` knob family)."""

    #: cache finished result sets at the protocol's traffic-concentration
    #: points; off is pinned bit-identical to uncached behaviour
    enabled: bool = False
    #: entries per cache site (LRU beyond this)
    capacity: int = 128
    #: cached-entry lifetime; keep at or below the heartbeat lease
    ttl_ms: float = 2_000.0

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError("the result cache needs room for at least one entry")
        if self.ttl_ms <= 0:
            raise ValueError("the result cache TTL must be positive")


@dataclass(frozen=True)
class MembershipConfig:
    """Live-membership maintenance (the ``live_membership`` knob family)."""

    #: make peer lifecycle real protocol traffic; off keeps the
    #: instantaneous ``set_online`` semantics bit-identically
    live: bool = False
    #: period of the maintenance tick (heartbeats, lease sweeps)
    maintenance_interval_ms: float = 2_000.0
    #: a counterpart silent for this many intervals is presumed dead
    heartbeat_lease_intervals: int = 2
    #: advertisement lease of the rendezvous organisation (lease-driven
    #: rather than heartbeat-driven decay); consumed by the scenario
    #: builder, not by ``PeerNetwork`` itself
    rendezvous_lease_ms: float = 30 * 60 * 1000.0

    def __post_init__(self) -> None:
        if self.maintenance_interval_ms <= 0:
            raise ValueError("the maintenance interval must be positive")
        if self.heartbeat_lease_intervals < 1:
            raise ValueError("the heartbeat lease must cover at least one interval")
        if self.rendezvous_lease_ms <= 0:
            raise ValueError("the rendezvous lease must be positive")


@dataclass(frozen=True)
class ReliabilityConfig:
    """Reliable delivery and chunked downloads (the recovery stack)."""

    #: ACK + capped-exponential-backoff envelope around registration-
    #: style control traffic and download requests
    reliable_delivery: bool = False
    #: base ack timeout (doubles per attempt, capped at 8x)
    retry_timeout_ms: float = 250.0
    #: total send attempts per reliable message / download provider
    retry_max_attempts: int = 4
    #: ``None`` keeps the legacy single-response download; a byte count
    #: streams downloads as chunks with stall detection and failover
    download_chunk_bytes: Optional[int] = None
    #: how long a download may stall before re-request / failover
    download_stall_timeout_ms: float = 500.0

    def __post_init__(self) -> None:
        if self.retry_timeout_ms <= 0:
            raise ValueError("the retry timeout must be positive")
        if self.retry_max_attempts < 1:
            raise ValueError("reliable delivery needs at least one attempt")
        if self.download_chunk_bytes is not None and self.download_chunk_bytes < 1:
            raise ValueError("download chunks must be at least one byte")
        if self.download_stall_timeout_ms <= 0:
            raise ValueError("the download stall timeout must be positive")


@dataclass(frozen=True)
class RoutingConfig:
    """Informed routing via attenuated Bloom filters (gnutella only)."""

    #: prune the flood with per-neighbour routing filters; off is
    #: pinned bit-identical to the blind flood by the contract suite
    informed: bool = False
    #: bits per Bloom-filter level (a multiple of 8: filters are
    #: advertised on the wire and sized in whole bytes)
    filter_bits: int = 512
    #: hash functions per key (crc32 double hashing)
    hash_count: int = 4
    #: filter levels: level ``d`` summarizes content at overlay
    #: distance ``d``, so pruning bites at hops with remaining
    #: TTL <= depth (the flood fringe, where the messages are)
    depth: int = 3

    def __post_init__(self) -> None:
        if self.filter_bits < 8 or self.filter_bits % 8:
            raise ValueError("filter_bits must be a positive multiple of 8")
        if self.hash_count < 1:
            raise ValueError("need at least one hash function")
        if self.depth < 1:
            raise ValueError("the filter needs at least one level")


def resolve_group(group: Optional[Any], group_name: str, cls: type,
                  flat_values: dict[str, Any]) -> Any:
    """Normalize one group: either the given ``group`` object (every
    corresponding flat kwarg must then be unset) or a fresh ``cls``
    built from the flat values, defaults filling the gaps.

    ``flat_values`` maps group field names to the *explicitly passed*
    flat values only — unset flat kwargs must not appear (callers use
    ``None``/sentinel defaults to tell the difference).
    """
    if group is not None:
        if not isinstance(group, cls):
            raise TypeError(f"{group_name} must be a {cls.__name__} or None")
        if flat_values:
            clashing = ", ".join(sorted(flat_values))
            raise ValueError(
                f"pass either {group_name}={cls.__name__}(...) or the flat "
                f"kwargs ({clashing}), not both")
        return group
    known = {field.name for field in fields(cls)}
    unknown = set(flat_values) - known
    if unknown:
        raise ValueError(f"unknown {cls.__name__} fields: {sorted(unknown)}")
    return cls(**flat_values)
