"""Zipf popularity distributions.

Measurements of Napster and Gnutella traffic contemporary with the
paper consistently showed Zipf-like object popularity; the replication
experiment (E6) and the query workloads use this distribution to decide
which objects get requested and therefore replicated.
"""

from __future__ import annotations

import bisect
import random
from typing import Sequence


class ZipfDistribution:
    """A Zipf(s) distribution over ranks ``0 .. n-1``."""

    def __init__(self, n: int, *, exponent: float = 1.0, seed: int = 0) -> None:
        if n < 1:
            raise ValueError("the distribution needs at least one rank")
        if exponent < 0:
            raise ValueError("the exponent must be non-negative")
        self.n = n
        self.exponent = exponent
        self._rng = random.Random(seed)
        weights = [1.0 / (rank + 1) ** exponent for rank in range(n)]
        total = sum(weights)
        self._cumulative: list[float] = []
        running = 0.0
        for weight in weights:
            running += weight / total
            self._cumulative.append(running)
        self._cumulative[-1] = 1.0

    # ------------------------------------------------------------------
    def sample(self) -> int:
        """Draw one rank (0 is the most popular)."""
        return bisect.bisect_left(self._cumulative, self._rng.random())

    def sample_many(self, count: int) -> list[int]:
        return [self.sample() for _ in range(count)]

    def probability(self, rank: int) -> float:
        """The probability mass of ``rank``."""
        if not 0 <= rank < self.n:
            raise IndexError(f"rank {rank} outside [0, {self.n})")
        previous = self._cumulative[rank - 1] if rank > 0 else 0.0
        return self._cumulative[rank] - previous

    def pick(self, items: Sequence) -> object:
        """Pick an element of ``items`` (which must have length ``n``)."""
        if len(items) != self.n:
            raise ValueError(f"expected {self.n} items, got {len(items)}")
        return items[self.sample()]

    def expected_top_share(self, top: int) -> float:
        """Probability mass concentrated in the ``top`` most popular ranks."""
        top = min(top, self.n)
        return self._cumulative[top - 1] if top > 0 else 0.0
