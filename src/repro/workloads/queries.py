"""Query workload generation from a community corpus.

The experiments need query streams with a controlled hit structure:
*field queries* that match a known subset of the corpus (so recall can
be computed), *keyword queries* drawn from corpus vocabulary, and
*miss queries* that match nothing (to measure the cost of unsuccessful
floods).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.storage.index import tokenize
from repro.storage.query import Criterion, Operator, Query
from repro.workloads.popularity import ZipfDistribution


@dataclass
class QueryWorkload:
    """A reusable stream of queries plus their expected matches."""

    community_id: str
    queries: list[Query] = field(default_factory=list)
    expected_matches: list[int] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self):
        return iter(self.queries)

    def mean_expected_matches(self) -> float:
        if not self.expected_matches:
            return 0.0
        return sum(self.expected_matches) / len(self.expected_matches)


def build_query_workload(
    community_id: str,
    corpus: Sequence[dict[str, object]],
    *,
    count: int = 50,
    searchable_fields: Optional[Sequence[str]] = None,
    miss_fraction: float = 0.1,
    zipf_exponent: float = 0.8,
    repeat_alpha: float = 0.0,
    seed: int = 0,
) -> QueryWorkload:
    """Build ``count`` queries against ``corpus``.

    Queries target values drawn from the corpus itself, skewed by a Zipf
    distribution over records so that popular objects are asked for more
    often; a ``miss_fraction`` of queries use vocabulary guaranteed not
    to occur in the corpus.

    ``repeat_alpha`` is the probability that a workload position
    re-issues an earlier query of the stream verbatim (drawn uniformly
    over the history, which the Zipf record skew already made
    popularity-heavy) — the repeat structure result caching feeds on.
    The repeat decisions use their own random stream, so ``0.0`` (the
    default) reproduces the uncached workloads bit-identically.
    """
    if not corpus:
        raise ValueError("cannot build a query workload from an empty corpus")
    if not 0.0 <= miss_fraction <= 1.0:
        raise ValueError("miss_fraction must be within [0, 1]")
    if not 0.0 <= repeat_alpha <= 1.0:
        raise ValueError("repeat_alpha must be within [0, 1]")
    rng = random.Random(seed)
    repeat_rng = random.Random(f"repeat:{seed}")
    fields = list(searchable_fields) if searchable_fields else _text_fields(corpus)
    popularity = ZipfDistribution(len(corpus), exponent=zipf_exponent, seed=seed)
    workload = QueryWorkload(community_id=community_id)

    for query_index in range(count):
        if repeat_alpha > 0.0 and workload.queries \
                and repeat_rng.random() < repeat_alpha:
            position = repeat_rng.randrange(len(workload.queries))
            workload.queries.append(workload.queries[position])
            workload.expected_matches.append(workload.expected_matches[position])
            continue
        if rng.random() < miss_fraction:
            query = Query.keyword(community_id, f"zzqx{query_index:04d} nothing matches this")
            workload.queries.append(query)
            workload.expected_matches.append(0)
            continue
        record = corpus[popularity.sample()]
        field_path = rng.choice(fields)
        value = _value_of(record, field_path)
        if not value:
            query = Query.keyword(community_id, "shared")
            workload.queries.append(query)
            workload.expected_matches.append(_count_keyword_matches(corpus, "shared"))
            continue
        if rng.random() < 0.5:
            # Field-scoped query on the full value.
            query = Query(community_id, [Criterion(field_path, value, Operator.CONTAINS)])
            expected = sum(1 for other in corpus if _contains(other, field_path, value))
        else:
            # Keyword query on a word of the value.
            tokens = tokenize(value)
            token = rng.choice(tokens) if tokens else value
            query = Query.keyword(community_id, token)
            expected = _count_keyword_matches(corpus, token)
        workload.queries.append(query)
        workload.expected_matches.append(expected)
    return workload


# ----------------------------------------------------------------------
def _text_fields(corpus: Sequence[dict[str, object]]) -> list[str]:
    fields = [
        path for path, value in corpus[0].items()
        if isinstance(value, str) and not value.startswith("http")
    ]
    return fields or list(corpus[0].keys())


def _value_of(record: dict[str, object], field_path: str) -> str:
    value = record.get(field_path, "")
    if isinstance(value, str):
        return value
    if isinstance(value, (list, tuple)) and value:
        return str(value[0])
    return str(value) if value else ""


def _contains(record: dict[str, object], field_path: str, value: str) -> bool:
    wanted = set(tokenize(value))
    present = set(tokenize(_value_of(record, field_path)))
    return bool(wanted) and wanted.issubset(present)


def _count_keyword_matches(corpus: Sequence[dict[str, object]], token: str) -> int:
    count = 0
    for record in corpus:
        text = " ".join(
            value if isinstance(value, str) else " ".join(str(item) for item in value)
            for value in record.values()
        )
        if token.lower() in tokenize(text):
            count += 1
    return count
