"""Scenario builders: a full experiment setup in one call.

A *scenario* is a network of a chosen protocol, a population of
servents, one or more bundled communities created and joined, a corpus
published across the peers, and a query workload — everything a
benchmark needs to measure a claim.

The query phase runs on the event kernel: with ``concurrency`` above
one, batches of queries are submitted at staggered virtual times and
stay in flight together, optionally while churn events (enabled with
``churn_session_ms``) strike mid-query.  ``cold_index`` rebuilds every
peer's local attribute index immediately before the workload, so
experiments can compare warm- against cold-index query phases.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.communities import ALL_COMMUNITIES
from repro.communities.base import CommunityDefinition
from repro.core.application import Application
from repro.core.servent import Servent
from repro.engine.driver import BatchOutcome, QueryDriver, RetrieveOp, SearchOp, WorkloadOp
from repro.network.base import PeerNetwork
from repro.network.centralized import CentralizedProtocol
from repro.network.faults import FaultPlan
from repro.network.gnutella import GnutellaProtocol
from repro.network.membership import PopulationModel
from repro.network.rendezvous import RendezvousProtocol
from repro.network.superpeer import SuperPeerProtocol
from repro.workloads.config import (
    CacheConfig,
    MembershipConfig,
    ReliabilityConfig,
    RoutingConfig,
    resolve_group,
)
from repro.workloads.popularity import ZipfDistribution
from repro.workloads.queries import QueryWorkload, build_query_workload

PROTOCOLS = {
    "centralized": CentralizedProtocol,
    "gnutella": GnutellaProtocol,
    "super-peer": SuperPeerProtocol,
    "rendezvous": RendezvousProtocol,
}

#: group field -> (flat ScenarioConfig attribute, its default); the
#: normalization in ``ScenarioConfig.__post_init__`` treats a flat
#: value still at its default as "not passed", so groups and untouched
#: flat kwargs coexist while a genuine clash raises.
_CACHE_FLAT = {"enabled": ("result_caching", False),
               "capacity": ("cache_capacity", 128),
               "ttl_ms": ("cache_ttl_ms", 2_000.0)}
_MEMBERSHIP_FLAT = {"live": ("live_membership", False),
                    "maintenance_interval_ms": ("maintenance_interval_ms", 2_000.0),
                    "heartbeat_lease_intervals": ("heartbeat_lease_intervals", 2),
                    "rendezvous_lease_ms": ("rendezvous_lease_ms", 30 * 60 * 1000.0)}
_RELIABILITY_FLAT = {"reliable_delivery": ("reliable_delivery", False),
                     "retry_timeout_ms": ("retry_timeout_ms", 250.0),
                     "retry_max_attempts": ("retry_max_attempts", 4),
                     "download_chunk_bytes": ("download_chunk_bytes", None),
                     "download_stall_timeout_ms": ("download_stall_timeout_ms", 500.0)}
_ROUTING_FLAT = {"informed": ("informed_routing", False),
                 "filter_bits": ("routing_filter_bits", 512),
                 "hash_count": ("routing_hash_count", 4),
                 "depth": ("routing_depth", 3)}


@dataclass
class ScenarioConfig:
    """Parameters of one experiment scenario."""

    protocol: str = "gnutella"
    peers: int = 50
    community: str = "design-patterns"
    corpus_size: int = 100
    publishers: int = 10
    members: int = 25
    queries: int = 50
    ttl: int = 7
    degree: int = 4
    super_peer_ratio: float = 0.1
    miss_fraction: float = 0.1
    seed: int = 0
    #: how many queries are kept in flight together (1 = serial)
    concurrency: int = 1
    #: virtual-time stagger between submissions inside one batch
    query_interarrival_ms: float = 25.0
    #: enable churn on the non-member peers when set (mean session length)
    churn_session_ms: Optional[float] = None
    #: mean absence once a churning peer departs
    churn_absence_ms: float = 2_000.0
    #: rebuild every peer's local attribute index before the query phase
    cold_index: bool = False
    #: fraction of workload operations that are downloads instead of
    #: searches (the paper's download-and-replicate load)
    retrieve_fraction: float = 0.0
    #: Zipf exponent of the download popularity distribution over the
    #: corpus (0 = uniform; 1+ = the skew early measurements reported)
    popularity_skew: float = 1.0
    #: compile each query once at search start (the hot path); turned
    #: off by the contract/benchmark suites to compare against the
    #: naive re-evaluating path, which must behave identically
    compile_queries: bool = True
    #: make peer lifecycle real protocol traffic: the network goes live
    #: after the bootstrap phase, so joins/leaves/heartbeats cost
    #: messages and stale state decays through repair traffic.  Off
    #: (the default) keeps the instantaneous set_online semantics
    #: bit-identically.
    live_membership: bool = False
    #: period of the live-mode maintenance tick (heartbeats, lease
    #: sweeps); must exceed the worst link latency
    maintenance_interval_ms: float = 2_000.0
    #: a counterpart silent for this many maintenance intervals is
    #: presumed dead (heartbeat lease = interval x this)
    heartbeat_lease_intervals: int = 2
    #: advertisement lease of the rendezvous organisation (its staleness
    #: and repair behaviour is lease-driven rather than heartbeat-driven)
    rendezvous_lease_ms: float = 30 * 60 * 1000.0
    #: cache finished result sets at each protocol's traffic-concentration
    #: points and answer repeats without re-paying discovery.  Off (the
    #: default) is pinned bit-identical to uncached behaviour by the
    #: contract suite.
    result_caching: bool = False
    #: result-cache entries per cache site (LRU beyond this)
    cache_capacity: int = 128
    #: result-cache entry lifetime; keep at or below the membership
    #: lease so stale cached hits stay inside the staleness window
    cache_ttl_ms: float = 2_000.0
    #: probability that a workload position re-issues an earlier query
    #: verbatim (the repeat structure result caching feeds on); 0 keeps
    #: the historical workloads bit-identical
    query_repeat_alpha: float = 0.0
    #: event-queue shards.  1 (the default) keeps the single-queue
    #: simulator; N>1 runs the scenario on a ShardedSimulator whose
    #: windowed barrier is pinned bit-identical to shards=1 by the
    #: cross-shard determinism contract
    shards: int = 1
    #: host the shard queues in worker *processes* (see
    #: ``repro.engine.parallel``).  Requires ``shards > 1`` and an active
    #: worker runtime — drive through ``run_parallel_scenario``; the
    #: default keeps the in-process simulators and is the contract anchor
    parallel: bool = False
    #: deterministic fault plan (message loss, duplication, partitions,
    #: crash-stop failures) applied at delivery time; ``None`` (the
    #: default) keeps the fault-free path pinned bit-identical by the
    #: fault contract
    faults: Optional[FaultPlan] = None
    #: acknowledge-and-retry envelope around the registration-style
    #: control traffic (REGISTER / JOIN / LEAF-ATTACH / AD-RENEW /
    #: DOWNLOAD-REQUEST); off by default — with it off the ack machinery
    #: never engages and behaviour is bit-identical to the seed
    reliable_delivery: bool = False
    #: base ack timeout of the reliable envelope (doubles per attempt,
    #: capped at 8x)
    retry_timeout_ms: float = 250.0
    #: total send attempts (first try included) before the envelope
    #: gives up on a message or a download provider
    retry_max_attempts: int = 4
    #: serve downloads as a paced stream of chunks of this size instead
    #: of one up-front scheduled response; required for mid-transfer
    #: failover (``None`` keeps the legacy single-shot transfer)
    download_chunk_bytes: Optional[int] = None
    #: requester-side watchdog period: how long a download may make no
    #: progress before the requester re-requests or fails over
    download_stall_timeout_ms: float = 500.0
    #: prune gnutella's flood with per-neighbour attenuated Bloom
    #: filters (``repro.network.routing``); off (the default) is pinned
    #: bit-identical to the blind flood, and the non-flooding
    #: organisations ignore the knob
    informed_routing: bool = False
    #: bits per Bloom-filter level (a multiple of 8)
    routing_filter_bits: int = 512
    #: hash functions per key (crc32 double hashing)
    routing_hash_count: int = 4
    #: filter levels (level ``d`` summarizes content ``d`` hops out)
    routing_depth: int = 3
    #: convenience alias for big runs: when set, overrides ``peers``
    #: (the scale benchmark and examples speak in populations)
    population: Optional[int] = None
    # ------------------------------------------------------------------
    # Grouped spellings: each bundle may be passed as one config object
    # instead of (never alongside) its flat kwargs above.  After
    # __post_init__ both spellings are materialized: the canonical
    # group objects live here, the flat attributes mirror them.
    # ------------------------------------------------------------------
    cache: Optional[CacheConfig] = None
    membership: Optional[MembershipConfig] = None
    reliability: Optional[ReliabilityConfig] = None
    routing: Optional[RoutingConfig] = None

    def __post_init__(self) -> None:
        if self.population is not None:
            if self.population < 2:
                raise ValueError("a population needs at least two peers")
            self.peers = self.population
        if self.shards < 1:
            raise ValueError("need at least one shard")
        if self.parallel and self.shards < 2:
            raise ValueError("parallel execution needs shards > 1 to distribute")
        if self.protocol not in PROTOCOLS:
            raise ValueError(f"unknown protocol {self.protocol!r}; choose from {sorted(PROTOCOLS)}")
        if self.community not in ALL_COMMUNITIES:
            raise ValueError(f"unknown community {self.community!r}; choose from {sorted(ALL_COMMUNITIES)}")
        if self.peers < 2:
            raise ValueError("a scenario needs at least two peers")
        if not 1 <= self.publishers <= self.peers:
            raise ValueError("publishers must be between 1 and the peer count")
        if not self.publishers <= self.members <= self.peers:
            raise ValueError("members must be between publishers and the peer count")
        if self.concurrency < 1:
            raise ValueError("concurrency must be at least 1")
        if self.query_interarrival_ms < 0:
            raise ValueError("the query interarrival must be non-negative")
        if self.churn_session_ms is not None and self.churn_session_ms <= 0:
            raise ValueError("the mean churn session must be positive")
        if not 0.0 <= self.retrieve_fraction <= 1.0:
            raise ValueError("retrieve_fraction must be within [0, 1]")
        if self.popularity_skew < 0:
            raise ValueError("popularity_skew must be non-negative")
        if not 0.0 <= self.query_repeat_alpha <= 1.0:
            raise ValueError("query_repeat_alpha must be within [0, 1]")
        if self.faults is not None and not isinstance(self.faults, FaultPlan):
            raise TypeError("faults must be a FaultPlan or None")
        # Normalize the grouped spellings.  Value validation (positive
        # intervals, cache capacity, retry budgets, ...) lives in the
        # group constructors, so both spellings fail identically.
        self.cache = resolve_group(
            self.cache, "cache", CacheConfig, self._explicit_flat(_CACHE_FLAT))
        self.membership = resolve_group(
            self.membership, "membership", MembershipConfig,
            self._explicit_flat(_MEMBERSHIP_FLAT))
        self.reliability = resolve_group(
            self.reliability, "reliability", ReliabilityConfig,
            self._explicit_flat(_RELIABILITY_FLAT))
        self.routing = resolve_group(
            self.routing, "routing", RoutingConfig,
            self._explicit_flat(_ROUTING_FLAT))
        for mapping, group in ((_CACHE_FLAT, self.cache),
                               (_MEMBERSHIP_FLAT, self.membership),
                               (_RELIABILITY_FLAT, self.reliability),
                               (_ROUTING_FLAT, self.routing)):
            for field_name, (attribute, _default) in mapping.items():
                setattr(self, attribute, getattr(group, field_name))
        if self.informed_routing and self.result_caching:
            raise ValueError(
                "informed_routing does not compose with result_caching: "
                "pruning changes which peers fill their path caches; "
                "run the knobs separately")
        if self.live_membership and self.protocol == "rendezvous" \
                and self.rendezvous_lease_ms < 2 * self.maintenance_interval_ms:
            # Renewals fire at lease/2 but only when a maintenance tick
            # runs; a lease shorter than two intervals would expire every
            # ad before its renewal could ever be sent.
            raise ValueError("the rendezvous lease must cover at least two "
                             "maintenance intervals under live membership")

    def _explicit_flat(self, mapping: dict) -> dict:
        """The explicitly-passed flat values of one group: a flat kwarg
        still sitting at its default is indistinguishable from unset,
        which is exactly the contract — defaults never clash with a
        group, a deliberate flat override does."""
        return {field_name: getattr(self, attribute)
                for field_name, (attribute, default) in mapping.items()
                if getattr(self, attribute) != default}


@dataclass
class Scenario:
    """A fully built experiment scenario."""

    config: ScenarioConfig
    network: PeerNetwork
    servents: list[Servent]
    definition: CommunityDefinition
    applications: list[Application]
    corpus: list[dict[str, object]]
    workload: QueryWorkload
    resource_ids: list[str] = field(default_factory=list)
    churn: Optional[PopulationModel] = None

    @property
    def community_id(self) -> str:
        return self.applications[0].community.community_id

    def members(self) -> list[Servent]:
        """Servents that joined the community (searchers)."""
        return self.servents[: self.config.members]

    def run_queries(self, *, max_results: int = 100) -> list[int]:
        """Run the whole query workload round-robin over members.

        With ``concurrency`` of one each query completes before the
        next is submitted; above one, the driver keeps that many
        queries in flight together on the event kernel.  Returns the
        result count of each query (recall analysis happens against
        ``workload.expected_matches``).
        """
        members = self.members()
        if self.config.concurrency <= 1:
            counts: list[int] = []
            for index, query in enumerate(self.workload):
                searcher = members[index % len(members)]
                response = searcher.search(self.community_id, query, max_results=max_results)
                counts.append(response.result_count)
            return counts
        requests = [
            (members[index % len(members)].peer_id, query)
            for index, query in enumerate(self.workload)
        ]
        driver = QueryDriver(self.network)
        counts = []
        for start in range(0, len(requests), self.config.concurrency):
            batch = requests[start:start + self.config.concurrency]
            outcome = driver.run_batch(
                batch,
                max_results=max_results,
                interarrival_ms=self.config.query_interarrival_ms,
            )
            counts.extend(outcome.result_counts)
        return counts

    def query_latencies_ms(self) -> list[float]:
        """Per-query latencies recorded during the runs so far."""
        return [record.latency_ms for record in self.network.stats.queries]

    def mixed_operations(self) -> list[WorkloadOp]:
        """The workload as a mixed op sequence, decided deterministically.

        Each position of the query workload either stays a search or —
        with probability ``retrieve_fraction`` — becomes a download of
        a corpus object drawn from a Zipf(``popularity_skew``)
        popularity distribution over the publication order.  Download
        providers are left unresolved (``provider_id=None``) so the
        driver resolves them at submission time against the replica set
        as it exists *then* — replicas created earlier in the run serve
        later downloads.
        """
        members = self.members()
        chooser = random.Random(f"mixed:{self.config.seed}")
        zipf = ZipfDistribution(max(1, len(self.resource_ids)),
                                exponent=self.config.popularity_skew,
                                seed=self.config.seed + 1)
        ops: list[WorkloadOp] = []
        for index, query in enumerate(self.workload):
            member = members[index % len(members)]
            if self.resource_ids and chooser.random() < self.config.retrieve_fraction:
                rank = zipf.sample()
                ops.append(RetrieveOp(requester_id=member.peer_id,
                                      resource_id=self.resource_ids[rank]))
            else:
                ops.append(SearchOp(origin_id=member.peer_id, query=query))
        return ops

    def run_mixed_workload(self, *, max_results: int = 100) -> BatchOutcome:
        """Run the workload with searches and downloads concurrently in
        flight (honouring ``retrieve_fraction`` / ``popularity_skew``).

        Operations run in batches of ``concurrency`` on the event
        kernel; inside a batch, downloads interleave with searches (and
        churn) on the shared clock without perturbing their latencies.
        Returns the merged :class:`~repro.engine.driver.BatchOutcome`.
        """
        ops = self.mixed_operations()
        driver = QueryDriver(self.network)
        outcome = BatchOutcome()
        step = max(1, self.config.concurrency)
        for start in range(0, len(ops), step):
            outcome.merge(driver.run_mixed(
                ops[start:start + step],
                max_results=max_results,
                interarrival_ms=self.config.query_interarrival_ms,
            ))
        return outcome

    def replication_degrees(self) -> list[int]:
        """Replication degree per corpus object, in popularity-rank order."""
        return [self.network.replication_degree(resource_id)
                for resource_id in self.resource_ids]


def build_network(config: ScenarioConfig) -> PeerNetwork:
    """Instantiate the protocol named by ``config`` with its knobs.

    The network is always built with live membership *off* — bootstrap
    (overlay construction, elections, corpus publication) is structural
    setup, not measured traffic; ``build_scenario`` calls ``go_live()``
    right before the workload when the knob is set.
    """
    common = dict(seed=config.seed, compile_queries=config.compile_queries,
                  cache=config.cache,
                  membership=replace(config.membership, live=False),
                  reliability=config.reliability,
                  routing=config.routing,
                  shards=config.shards,
                  parallel=config.parallel)
    if config.protocol == "gnutella":
        return GnutellaProtocol(default_ttl=config.ttl, degree=config.degree, **common)
    if config.protocol == "super-peer":
        return SuperPeerProtocol(super_peer_ratio=config.super_peer_ratio, **common)
    if config.protocol == "rendezvous":
        return RendezvousProtocol(rendezvous_ratio=config.super_peer_ratio,
                                  lease_ms=config.rendezvous_lease_ms, **common)
    return CentralizedProtocol(**common)


def build_scenario(config: Optional[ScenarioConfig] = None, **overrides) -> Scenario:
    """Build a complete scenario from ``config`` (or keyword overrides)."""
    if config is None:
        config = ScenarioConfig(**overrides)
    network = build_network(config)
    servents = [Servent(f"peer-{index:04d}", network) for index in range(config.peers)]

    definition = ALL_COMMUNITIES[config.community]()
    founder_app = definition.application_on(servents[0])

    # Members 1..members-1 discover the community in the root community
    # and join it; the remaining peers only relay traffic.
    applications = [founder_app]
    for servent in servents[1:config.members]:
        discovery = servent.search_communities(definition.keywords.split()[0])
        matches = [result for result in discovery.results if result.title == definition.name]
        if not matches:
            community = founder_app.community
            servent.join_community(community)
        else:
            community = servent.join_community(matches[0])
        applications.append(Application(servent, community))

    if isinstance(network, GnutellaProtocol):
        network.build_overlay()
    if isinstance(network, SuperPeerProtocol):
        network.elect_super_peers()
    if isinstance(network, RendezvousProtocol):
        network.elect_rendezvous()

    corpus = definition.sample_corpus(config.corpus_size, seed=config.seed)
    publishers = applications[: config.publishers]
    resource_ids: list[str] = []
    for index, record in enumerate(corpus):
        application = publishers[index % len(publishers)]
        resource = application.publish(record)
        resource_ids.append(resource.resource_id)

    community_id = founder_app.community.community_id
    searchable = [info.path for info in founder_app.community.schema.searchable_fields()]
    workload = build_query_workload(
        community_id,
        corpus,
        count=config.queries,
        searchable_fields=[path for path in searchable if "/" not in path] or None,
        miss_fraction=config.miss_fraction,
        repeat_alpha=config.query_repeat_alpha,
        seed=config.seed,
    )

    if config.cold_index:
        # Cold start: every peer re-derives its index from its documents
        # right before the workload, so the query phase pays first-touch
        # index state instead of the one warmed by publishing.
        for servent in servents:
            servent.repository.rebuild_index()

    if config.live_membership:
        # From here on, lifecycle is protocol traffic: maintenance
        # timers start ticking and every population change below costs
        # real messages on the kernel.
        network.go_live()

    churn: Optional[PopulationModel] = None
    if config.churn_session_ms is not None:
        # The searchers (members) stay up; the relay population churns,
        # with departures and returns interleaved into the query phase
        # on the shared event queue.
        churn = PopulationModel(
            network,
            mean_session_ms=config.churn_session_ms,
            mean_absence_ms=config.churn_absence_ms,
            seed=config.seed,
        )
        churn.start([servent.peer_id for servent in servents[config.members:]])

    if config.faults is not None:
        # Faults arm only now: bootstrap (overlay construction, corpus
        # publication, community joins) is structural setup, so the plan
        # describes the measured workload environment and its window /
        # crash times count from the start of the query phase.
        network.install_faults(config.faults)

    # Reset the statistics so experiments measure the query phase only,
    # not community creation and publishing.  Session clocks restart at
    # the same boundary so uptime accounting covers the workload window,
    # not the (long, search-heavy) bootstrap phase.
    network.stats.reset()
    for peer in network.peers.values():
        if peer.online:
            peer.online_since = network.simulator.now
    return Scenario(
        config=config,
        network=network,
        servents=servents,
        definition=definition,
        applications=applications,
        corpus=corpus,
        workload=workload,
        resource_ids=resource_ids,
        churn=churn,
    )
