"""Workload generation for the experiment harness.

* :mod:`repro.workloads.popularity` — Zipf popularity over objects and
  queries (the skew observed in early file-sharing measurements).
* :mod:`repro.workloads.queries` — query workload generators built from
  a community corpus.
* :mod:`repro.workloads.scenario` — builders that assemble a complete
  experiment scenario: a network of a given protocol, a population of
  servents, communities, corpora and query streams.
"""

from repro.workloads.config import (
    CacheConfig,
    MembershipConfig,
    ReliabilityConfig,
    RoutingConfig,
)
from repro.workloads.popularity import ZipfDistribution
from repro.workloads.queries import QueryWorkload, build_query_workload
from repro.workloads.scenario import Scenario, ScenarioConfig, build_scenario

__all__ = [
    "CacheConfig",
    "MembershipConfig",
    "ReliabilityConfig",
    "RoutingConfig",
    "ZipfDistribution",
    "QueryWorkload",
    "build_query_workload",
    "Scenario",
    "ScenarioConfig",
    "build_scenario",
]
