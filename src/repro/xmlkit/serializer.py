"""Serialization of the element tree back to XML (and canonical forms)."""

from __future__ import annotations

from typing import Union

from repro.xmlkit.dom import Document, Element
from repro.xmlkit.escape import escape_attribute, escape_text

Node = Union[Document, Element]


def serialize(node: Node, *, xml_declaration: bool = True) -> str:
    """Serialize a document or element to a compact XML string."""
    element, declaration = _unwrap(node, xml_declaration)
    parts: list[str] = []
    if declaration:
        parts.append(declaration)
    _write_element(element, parts, indent=None, level=0)
    return "".join(parts)


def pretty(node: Node, *, indent: str = "  ", xml_declaration: bool = True) -> str:
    """Serialize with indentation, suitable for humans and docs.

    Elements that contain non-whitespace text keep their text inline so
    mixed content is not corrupted by added whitespace.
    """
    element, declaration = _unwrap(node, xml_declaration)
    parts: list[str] = []
    if declaration:
        parts.append(declaration + "\n")
    _write_element(element, parts, indent=indent, level=0)
    parts.append("\n")
    return "".join(parts)


def canonical(node: Node) -> str:
    """A canonical-ish form used for hashing and structural comparison.

    Attributes are emitted in sorted order, whitespace-only text is
    dropped and no XML declaration is included.  Two structurally equal
    trees produce identical canonical strings.
    """
    element = node.root if isinstance(node, Document) else node
    parts: list[str] = []
    _write_canonical(element, parts)
    return "".join(parts)


# ----------------------------------------------------------------------
def _unwrap(node: Node, xml_declaration: bool) -> tuple[Element, str]:
    if isinstance(node, Document):
        declaration = ""
        if xml_declaration:
            declaration = f'<?xml version="{node.version}" encoding="{node.encoding}"?>'
        return node.root, declaration
    declaration = '<?xml version="1.0" encoding="UTF-8"?>' if xml_declaration else ""
    return node, declaration


def _open_tag(element: Element) -> str:
    chunks = [f"<{element.tag}"]
    for name, value in element.attributes.items():
        chunks.append(f' {name}="{escape_attribute(value)}"')
    return "".join(chunks)


def _write_element(element: Element, parts: list[str], *, indent: Union[str, None], level: int) -> None:
    pad = "" if indent is None else "\n" + indent * level if parts else indent * level
    if indent is not None:
        if parts and not parts[-1].endswith("\n"):
            parts.append("\n")
        parts.append(indent * level)
    parts.append(_open_tag(element))
    has_text = bool(element.text.strip())
    if not element.children and not has_text:
        parts.append("/>")
        return
    parts.append(">")
    if has_text or indent is None:
        parts.append(escape_text(element.text))
    for child in element.children:
        _write_element(child, parts, indent=indent, level=level + 1)
        if indent is None or child.tail.strip():
            parts.append(escape_text(child.tail))
    if element.children and indent is not None and not has_text:
        parts.append("\n")
        parts.append(indent * level)
    parts.append(f"</{element.tag}>")
    del pad  # kept for readability of the indenting logic above


def _write_canonical(element: Element, parts: list[str]) -> None:
    parts.append(f"<{element.local_name}")
    attributes = {
        name: value
        for name, value in element.attributes.items()
        if not name.startswith("xmlns")
    }
    for name in sorted(attributes):
        parts.append(f' {name.split(":", 1)[-1]}="{escape_attribute(attributes[name])}"')
    parts.append(">")
    text = element.text.strip()
    if text:
        parts.append(escape_text(text))
    for child in element.children:
        _write_canonical(child, parts)
        tail = child.tail.strip()
        if tail:
            parts.append(escape_text(tail))
    parts.append(f"</{element.local_name}>")
