"""Error types for the XML substrate."""

from __future__ import annotations


class XMLError(Exception):
    """Base class for all XML substrate errors."""


class XMLParseError(XMLError):
    """Raised when a document is not well-formed.

    Carries the 1-based ``line`` and ``column`` of the offending input
    position so callers (and tests) can report precise locations.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class XMLSerializeError(XMLError):
    """Raised when a tree cannot be serialized (e.g. illegal characters)."""


class XPathError(XMLError):
    """Raised for unsupported or malformed XPath expressions."""
