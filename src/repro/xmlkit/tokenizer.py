"""A hand-written tokenizer for XML 1.0 documents.

The tokenizer turns an input string into a stream of tokens that the
parser assembles into a tree.  It tracks line and column numbers so
that :class:`~repro.xmlkit.errors.XMLParseError` can point at the exact
input position — important for schema authors debugging hand-written
community descriptions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, auto
from typing import Iterator, Optional

from repro.xmlkit.errors import XMLParseError
from repro.xmlkit.escape import decode_entities, is_name_char, is_name_start_char


class TokenType(Enum):
    """Kinds of token produced by the tokenizer."""

    DECLARATION = auto()      # <?xml ... ?>
    PROCESSING = auto()       # <?target data?>
    DOCTYPE = auto()          # <!DOCTYPE ...>
    COMMENT = auto()          # <!-- ... -->
    START_TAG = auto()        # <name attr="v">
    EMPTY_TAG = auto()        # <name attr="v"/>
    END_TAG = auto()          # </name>
    TEXT = auto()             # character data
    CDATA = auto()            # <![CDATA[ ... ]]>


@dataclass
class Token:
    """One lexical token.

    ``value`` holds the tag name (for tags), target (for PIs) or text
    content.  ``attributes`` is populated for start/empty tags.
    """

    type: TokenType
    value: str
    attributes: dict[str, str] = field(default_factory=dict)
    line: int = 0
    column: int = 0


class Tokenizer:
    """Streaming tokenizer over a full in-memory document string."""

    def __init__(self, text: str) -> None:
        self._text = text
        self._pos = 0
        self._line = 1
        self._column = 1

    # ------------------------------------------------------------------
    # Low-level cursor helpers
    # ------------------------------------------------------------------
    def _error(self, message: str) -> XMLParseError:
        return XMLParseError(message, self._line, self._column)

    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        return self._text[index] if index < len(self._text) else ""

    def _advance(self, count: int = 1) -> str:
        chunk = self._text[self._pos:self._pos + count]
        for char in chunk:
            if char == "\n":
                self._line += 1
                self._column = 1
            else:
                self._column += 1
        self._pos += count
        return chunk

    def _at_end(self) -> bool:
        return self._pos >= len(self._text)

    def _starts_with(self, prefix: str) -> bool:
        return self._text.startswith(prefix, self._pos)

    def _consume_until(self, terminator: str, context: str) -> str:
        end = self._text.find(terminator, self._pos)
        if end == -1:
            raise self._error(f"unterminated {context}")
        chunk = self._text[self._pos:end]
        self._advance(len(chunk) + len(terminator))
        return chunk

    def _skip_whitespace(self) -> None:
        while not self._at_end() and self._peek() in " \t\r\n":
            self._advance()

    def _read_name(self) -> str:
        start_char = self._peek()
        if not start_char or not is_name_start_char(start_char):
            raise self._error(f"expected a name, found {start_char!r}")
        chars = [self._advance()]
        while not self._at_end() and is_name_char(self._peek()):
            chars.append(self._advance())
        return "".join(chars)

    # ------------------------------------------------------------------
    # Token production
    # ------------------------------------------------------------------
    def tokens(self) -> Iterator[Token]:
        """Yield tokens until the input is exhausted."""
        while not self._at_end():
            token = self._next_token()
            if token is not None:
                yield token

    def _next_token(self) -> Optional[Token]:
        line, column = self._line, self._column
        if self._peek() != "<":
            return self._read_text(line, column)
        if self._starts_with("<?xml") and self._peek(5) in (" ", "\t", "?"):
            return self._read_declaration(line, column)
        if self._starts_with("<?"):
            return self._read_processing(line, column)
        if self._starts_with("<!--"):
            return self._read_comment(line, column)
        if self._starts_with("<![CDATA["):
            return self._read_cdata(line, column)
        if self._starts_with("<!DOCTYPE"):
            return self._read_doctype(line, column)
        if self._starts_with("</"):
            return self._read_end_tag(line, column)
        return self._read_start_tag(line, column)

    def _read_text(self, line: int, column: int) -> Optional[Token]:
        end = self._text.find("<", self._pos)
        if end == -1:
            end = len(self._text)
        raw = self._text[self._pos:end]
        self._advance(len(raw))
        if "]]>" in raw:
            raise XMLParseError("']]>' not allowed in character data", line, column)
        decoded = decode_entities(raw, line, column)
        return Token(TokenType.TEXT, decoded, line=line, column=column)

    def _read_declaration(self, line: int, column: int) -> Token:
        self._advance(len("<?xml"))
        attributes = self._read_attributes(allow_question=True)
        if not self._starts_with("?>"):
            raise self._error("expected '?>' to close XML declaration")
        self._advance(2)
        return Token(TokenType.DECLARATION, "xml", attributes, line, column)

    def _read_processing(self, line: int, column: int) -> Token:
        self._advance(2)
        target = self._read_name()
        data = self._consume_until("?>", "processing instruction")
        return Token(TokenType.PROCESSING, target, {"data": data.strip()}, line, column)

    def _read_comment(self, line: int, column: int) -> Token:
        self._advance(4)
        body = self._consume_until("-->", "comment")
        if "--" in body:
            raise XMLParseError("'--' not allowed inside comments", line, column)
        return Token(TokenType.COMMENT, body, line=line, column=column)

    def _read_cdata(self, line: int, column: int) -> Token:
        self._advance(len("<![CDATA["))
        body = self._consume_until("]]>", "CDATA section")
        return Token(TokenType.CDATA, body, line=line, column=column)

    def _read_doctype(self, line: int, column: int) -> Token:
        self._advance(len("<!DOCTYPE"))
        depth = 1
        chars: list[str] = []
        while depth > 0:
            if self._at_end():
                raise self._error("unterminated DOCTYPE")
            char = self._advance()
            if char == "<":
                depth += 1
            elif char == ">":
                depth -= 1
                if depth == 0:
                    break
            chars.append(char)
        return Token(TokenType.DOCTYPE, "".join(chars).strip(), line=line, column=column)

    def _read_end_tag(self, line: int, column: int) -> Token:
        self._advance(2)
        name = self._read_name()
        self._skip_whitespace()
        if self._peek() != ">":
            raise self._error(f"malformed end tag </{name}")
        self._advance()
        return Token(TokenType.END_TAG, name, line=line, column=column)

    def _read_start_tag(self, line: int, column: int) -> Token:
        self._advance(1)
        name = self._read_name()
        attributes = self._read_attributes()
        if self._starts_with("/>"):
            self._advance(2)
            return Token(TokenType.EMPTY_TAG, name, attributes, line, column)
        if self._peek() == ">":
            self._advance()
            return Token(TokenType.START_TAG, name, attributes, line, column)
        raise self._error(f"malformed start tag <{name}")

    def _read_attributes(self, allow_question: bool = False) -> dict[str, str]:
        attributes: dict[str, str] = {}
        while True:
            self._skip_whitespace()
            char = self._peek()
            if char in (">", "/", "") or (allow_question and char == "?"):
                return attributes
            line, column = self._line, self._column
            name = self._read_name()
            self._skip_whitespace()
            if self._peek() != "=":
                raise self._error(f"attribute {name!r} is missing '='")
            self._advance()
            self._skip_whitespace()
            quote = self._peek()
            if quote not in ("'", '"'):
                raise self._error(f"attribute {name!r} value must be quoted")
            self._advance()
            value = self._consume_until(quote, f"attribute {name!r}")
            if "<" in value:
                raise XMLParseError(f"'<' not allowed in attribute {name!r}", line, column)
            if name in attributes:
                raise XMLParseError(f"duplicate attribute {name!r}", line, column)
            attributes[name] = decode_entities(value, line, column)


def tokenize(text: str) -> list[Token]:
    """Tokenize ``text`` and return the full token list."""
    return list(Tokenizer(text).tokens())
