"""A small, namespace-aware XML element tree.

The tree intentionally mirrors the subset of the W3C DOM that U-P2P
needs: elements with attributes, namespace declarations, text and child
elements, plus a document wrapper.  Mixed content is supported by
storing text in ``text`` / ``tail`` slots, the same model used by
``ElementTree`` so the API feels familiar.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Optional

XML_NAMESPACE = "http://www.w3.org/XML/1998/namespace"
XMLNS_NAMESPACE = "http://www.w3.org/2000/xmlns/"
XSD_NAMESPACE = "http://www.w3.org/2001/XMLSchema"
XSI_NAMESPACE = "http://www.w3.org/2001/XMLSchema-instance"
XSLT_NAMESPACE = "http://www.w3.org/1999/XSL/Transform"


@dataclass(frozen=True)
class QName:
    """A qualified name: an optional namespace URI plus a local name."""

    namespace: Optional[str]
    local: str

    @classmethod
    def parse(cls, name: str, resolver: Optional[Callable[[str], Optional[str]]] = None) -> "QName":
        """Split ``prefix:local`` using ``resolver`` to map prefixes to URIs.

        Without a resolver the prefix is preserved inside ``namespace`` as
        ``None`` and the full string becomes the local name; this keeps
        unprefixed usage trivially correct.
        """
        if ":" in name:
            prefix, local = name.split(":", 1)
            if resolver is not None:
                return cls(resolver(prefix), local)
            return cls(None, name)
        if resolver is not None:
            return cls(resolver(""), name)
        return cls(None, name)

    def clark(self) -> str:
        """Return Clark notation ``{uri}local`` (or just ``local``)."""
        if self.namespace:
            return "{%s}%s" % (self.namespace, self.local)
        return self.local

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.clark()


class Element:
    """An XML element node.

    Parameters
    ----------
    tag:
        The element name as written in the document (possibly prefixed,
        e.g. ``xsd:element``).
    attributes:
        Attribute name → value mapping.  Namespace declarations
        (``xmlns`` / ``xmlns:p``) live here too, exactly as parsed.
    """

    __slots__ = ("tag", "attributes", "children", "text", "tail", "parent", "nsmap")

    def __init__(
        self,
        tag: str,
        attributes: Optional[dict[str, str]] = None,
        *,
        text: str = "",
        nsmap: Optional[dict[str, str]] = None,
    ) -> None:
        self.tag = tag
        self.attributes: dict[str, str] = dict(attributes or {})
        self.children: list["Element"] = []
        self.text: str = text
        self.tail: str = ""
        self.parent: Optional["Element"] = None
        # Namespace declarations made *on this element* (prefix -> uri).
        # "" is the default namespace.
        self.nsmap: dict[str, str] = dict(nsmap or {})
        for name, value in self.attributes.items():
            if name == "xmlns":
                self.nsmap.setdefault("", value)
            elif name.startswith("xmlns:"):
                self.nsmap.setdefault(name[6:], value)

    # ------------------------------------------------------------------
    # Naming helpers
    # ------------------------------------------------------------------
    @property
    def prefix(self) -> str:
        """The namespace prefix of the tag ('' when unprefixed)."""
        return self.tag.split(":", 1)[0] if ":" in self.tag else ""

    @property
    def local_name(self) -> str:
        """The tag name with any namespace prefix stripped."""
        return self.tag.split(":", 1)[1] if ":" in self.tag else self.tag

    def resolve_prefix(self, prefix: str) -> Optional[str]:
        """Resolve ``prefix`` to a namespace URI by walking up the tree."""
        if prefix == "xml":
            return XML_NAMESPACE
        node: Optional[Element] = self
        while node is not None:
            if prefix in node.nsmap:
                return node.nsmap[prefix]
            node = node.parent
        return None

    @property
    def namespace(self) -> Optional[str]:
        """The namespace URI this element's tag resolves to, if any."""
        return self.resolve_prefix(self.prefix)

    def qname(self) -> QName:
        """The element name as a resolved :class:`QName`."""
        return QName(self.namespace, self.local_name)

    # ------------------------------------------------------------------
    # Attribute access
    # ------------------------------------------------------------------
    def get(self, name: str, default: Optional[str] = None) -> Optional[str]:
        """Return an attribute value by its literal (possibly prefixed) name."""
        return self.attributes.get(name, default)

    def set(self, name: str, value: str) -> None:
        """Set an attribute, tracking namespace declarations."""
        self.attributes[name] = value
        if name == "xmlns":
            self.nsmap[""] = value
        elif name.startswith("xmlns:"):
            self.nsmap[name[6:]] = value

    def has(self, name: str) -> bool:
        """Return True if the attribute is present."""
        return name in self.attributes

    def get_local(self, local_name: str, default: Optional[str] = None) -> Optional[str]:
        """Return an attribute by local name regardless of prefix."""
        for name, value in self.attributes.items():
            bare = name.split(":", 1)[1] if ":" in name else name
            if bare == local_name and not name.startswith("xmlns"):
                return value
        return default

    # ------------------------------------------------------------------
    # Tree construction / navigation
    # ------------------------------------------------------------------
    def append(self, child: "Element") -> "Element":
        """Append ``child`` and return it (for chaining)."""
        child.parent = self
        self.children.append(child)
        return child

    def extend(self, children: Iterable["Element"]) -> None:
        for child in children:
            self.append(child)

    def remove(self, child: "Element") -> None:
        self.children.remove(child)
        child.parent = None

    def make_child(self, tag: str, text: str = "", attributes: Optional[dict[str, str]] = None) -> "Element":
        """Create, append and return a new child element."""
        return self.append(Element(tag, attributes, text=text))

    def __iter__(self) -> Iterator["Element"]:
        return iter(self.children)

    def __len__(self) -> int:
        return len(self.children)

    def iter(self, local_name: Optional[str] = None) -> Iterator["Element"]:
        """Depth-first iteration over this element and its descendants."""
        if local_name is None or self.local_name == local_name:
            yield self
        for child in self.children:
            yield from child.iter(local_name)

    def find(self, local_name: str) -> Optional["Element"]:
        """Return the first direct child with the given local name."""
        for child in self.children:
            if child.local_name == local_name:
                return child
        return None

    def find_all(self, local_name: str) -> list["Element"]:
        """Return all direct children with the given local name."""
        return [child for child in self.children if child.local_name == local_name]

    def child_text(self, local_name: str, default: str = "") -> str:
        """Return the text content of the first matching child."""
        child = self.find(local_name)
        return child.text_content() if child is not None else default

    def text_content(self) -> str:
        """Return the concatenation of all descendant text."""
        parts = [self.text]
        for child in self.children:
            parts.append(child.text_content())
            parts.append(child.tail)
        return "".join(parts)

    def path_from_root(self) -> str:
        """Return a ``/``-separated path of local names from the root."""
        names: list[str] = []
        node: Optional[Element] = self
        while node is not None:
            names.append(node.local_name)
            node = node.parent
        return "/".join(reversed(names))

    def depth(self) -> int:
        """Return the number of ancestors of this element."""
        count = 0
        node = self.parent
        while node is not None:
            count += 1
            node = node.parent
        return count

    # ------------------------------------------------------------------
    # Copying and equality
    # ------------------------------------------------------------------
    def copy(self) -> "Element":
        """Return a deep copy of this subtree (parent link cleared)."""
        clone = Element(self.tag, dict(self.attributes), text=self.text, nsmap=dict(self.nsmap))
        clone.tail = self.tail
        for child in self.children:
            clone.append(child.copy())
        return clone

    def structurally_equal(self, other: "Element") -> bool:
        """Structural equality: tag, attributes, normalized text, children."""
        if self.local_name != other.local_name:
            return False
        mine = {k: v for k, v in self.attributes.items() if not k.startswith("xmlns")}
        theirs = {k: v for k, v in other.attributes.items() if not k.startswith("xmlns")}
        if mine != theirs:
            return False
        if self.text.strip() != other.text.strip():
            return False
        if len(self.children) != len(other.children):
            return False
        return all(
            a.structurally_equal(b)
            for a, b in zip(self.children, other.children, strict=True)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Element {self.tag} attrs={len(self.attributes)} children={len(self.children)}>"


class Document:
    """A parsed XML document: a root element plus prolog information."""

    __slots__ = ("root", "version", "encoding", "standalone")

    def __init__(
        self,
        root: Element,
        *,
        version: str = "1.0",
        encoding: str = "UTF-8",
        standalone: Optional[bool] = None,
    ) -> None:
        self.root = root
        self.version = version
        self.encoding = encoding
        self.standalone = standalone

    def iter(self, local_name: Optional[str] = None) -> Iterator[Element]:
        return self.root.iter(local_name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Document root={self.root.tag!r}>"
