"""A small XPath subset sufficient for U-P2P's needs.

Supported syntax
----------------
* relative and absolute location paths: ``a/b/c``, ``/community/name``
* the descendant shortcut: ``//pattern`` and ``a//b``
* wildcards: ``*``
* the self and parent steps: ``.`` and ``..``
* attribute steps: ``@name`` and ``@*``
* text nodes: ``text()``
* predicates: positional ``[2]``, ``[last()]``, attribute equality
  ``[@a='v']``, child-value equality ``[name='v']`` and existence
  ``[@a]`` / ``[name]``
* union expressions: ``a | b``

This covers every path used by the default stylesheets, the searchable-
field annotations (``upsearch`` in the original prototype) and the index
filter stylesheets of the case study.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence, Union

from repro.xmlkit.dom import Document, Element
from repro.xmlkit.errors import XPathError

_PREDICATE_RE = re.compile(r"\[([^\]]*)\]")


@dataclass(frozen=True)
class Predicate:
    """A single ``[...]`` filter applied to a step's node set."""

    kind: str                      # 'index' | 'last' | 'attr-eq' | 'attr-exists' | 'child-eq' | 'child-exists'
    name: str = ""
    value: str = ""
    index: int = 0

    def matches(self, element: Element, position: int, size: int) -> bool:
        if self.kind == "index":
            return position == self.index
        if self.kind == "last":
            return position == size
        if self.kind == "attr-eq":
            if self.name == "*":
                return self.value in element.attributes.values()
            return element.get_local(self.name) == self.value
        if self.kind == "attr-exists":
            if self.name == "*":
                return bool(element.attributes)
            return element.get_local(self.name) is not None
        if self.kind == "child-eq":
            child = element.find(self.name)
            return child is not None and child.text_content().strip() == self.value
        if self.kind == "child-exists":
            return element.find(self.name) is not None
        raise XPathError(f"unknown predicate kind {self.kind!r}")


@dataclass(frozen=True)
class Step:
    """One step of a location path."""

    axis: str                      # 'child' | 'descendant' | 'self' | 'parent' | 'attribute' | 'text'
    name: str = "*"
    predicates: tuple[Predicate, ...] = field(default_factory=tuple)


class XPath:
    """A compiled XPath expression (a union of location paths)."""

    def __init__(self, expression: str) -> None:
        expression = expression.strip()
        if not expression:
            raise XPathError("empty XPath expression")
        self.expression = expression
        self._paths = [_compile_path(part.strip()) for part in expression.split("|")]

    # ------------------------------------------------------------------
    def select(self, context: Union[Document, Element]) -> list[Union[Element, str]]:
        """Evaluate against ``context`` and return matching nodes.

        Element steps yield :class:`Element` objects; attribute and
        ``text()`` steps yield strings.
        """
        root = context.root if isinstance(context, Document) else context
        results: list[Union[Element, str]] = []
        seen: set[int] = set()
        for absolute, steps in self._paths:
            start: list[Element] = [_document_start(root)] if absolute else [root]
            for node in _evaluate_steps(start, steps):
                # Identity-only dedup: every yielded node is kept alive by
                # ``results``, so id() is injective here, and two live
                # objects can never collide.  (The historical
                # ``id ^ hash`` variant mixed in the per-process str-hash
                # salt for no discriminating power — equal-but-distinct
                # strings already differ by id.)
                marker = id(node)
                if marker not in seen:
                    seen.add(marker)
                    results.append(node)
        return results

    def select_elements(self, context: Union[Document, Element]) -> list[Element]:
        """Like :meth:`select` but keeps only element nodes."""
        return [node for node in self.select(context) if isinstance(node, Element)]

    def first(self, context: Union[Document, Element]) -> Optional[Union[Element, str]]:
        """Return the first match or None."""
        matches = self.select(context)
        return matches[0] if matches else None

    def string_value(self, context: Union[Document, Element]) -> str:
        """Return the string value of the first match ('' when empty)."""
        match = self.first(context)
        if match is None:
            return ""
        if isinstance(match, Element):
            return match.text_content().strip()
        return match

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"XPath({self.expression!r})"


# ----------------------------------------------------------------------
# Compilation
# ----------------------------------------------------------------------
def _compile_path(path: str) -> tuple[bool, list[Step]]:
    if not path:
        raise XPathError("empty location path in expression")
    absolute = path.startswith("/")
    descendant_next = False
    steps: list[Step] = []
    # Normalise '//' into a marker between steps.
    raw = path
    if absolute:
        raw = raw[1:]
        if raw.startswith("/"):          # expression began with '//'
            descendant_next = True
            raw = raw[1:]
    pieces: list[str] = []
    buffer = ""
    index = 0
    while index < len(raw):
        char = raw[index]
        if char == "/":
            pieces.append(buffer)
            buffer = ""
            if index + 1 < len(raw) and raw[index + 1] == "/":
                pieces.append("//")
                index += 1
            index += 1
            continue
        buffer += char
        index += 1
    pieces.append(buffer)

    for piece in pieces:
        if piece == "//":
            descendant_next = True
            continue
        if piece == "":
            continue
        axis = "descendant" if descendant_next else "child"
        descendant_next = False
        steps.append(_compile_step(piece, axis))
    if not steps:
        steps.append(Step(axis="self", name="*"))
    return absolute, steps


def _compile_step(piece: str, axis: str) -> Step:
    predicates: list[Predicate] = []
    for body in _PREDICATE_RE.findall(piece):
        predicates.append(_compile_predicate(body.strip()))
    name_part = _PREDICATE_RE.sub("", piece).strip()
    if name_part == ".":
        return Step(axis="self", name="*", predicates=tuple(predicates))
    if name_part == "..":
        return Step(axis="parent", name="*", predicates=tuple(predicates))
    if name_part == "text()":
        return Step(axis="text", predicates=tuple(predicates))
    if name_part.startswith("@"):
        return Step(axis="attribute", name=name_part[1:] or "*", predicates=tuple(predicates))
    if name_part.startswith("child::"):
        name_part = name_part[len("child::"):]
    if name_part.startswith("descendant::"):
        return Step(axis="descendant", name=name_part[len("descendant::"):], predicates=tuple(predicates))
    if not name_part or "[" in name_part or "]" in name_part:
        raise XPathError(f"cannot parse location step {piece!r}")
    return Step(axis=axis, name=name_part, predicates=tuple(predicates))


def _compile_predicate(body: str) -> Predicate:
    if not body:
        raise XPathError("empty predicate []")
    if body == "last()":
        return Predicate(kind="last")
    if body.isdigit():
        return Predicate(kind="index", index=int(body))
    if "=" in body:
        left, right = body.split("=", 1)
        left = left.strip()
        value = right.strip().strip("'\"")
        if left.startswith("@"):
            return Predicate(kind="attr-eq", name=left[1:], value=value)
        if left == "text()" or left == ".":
            return Predicate(kind="child-eq", name=".", value=value)
        return Predicate(kind="child-eq", name=left, value=value)
    if body.startswith("@"):
        return Predicate(kind="attr-exists", name=body[1:])
    return Predicate(kind="child-exists", name=body)


# ----------------------------------------------------------------------
# Evaluation
# ----------------------------------------------------------------------
def _document_root(element: Element) -> Element:
    node = element
    while node.parent is not None:
        node = node.parent
    return node


def _document_start(element: Element) -> Element:
    """The starting node for absolute paths.

    Absolute paths are evaluated from the *document node*, whose only
    child is the outermost element.  When the tree already carries a
    synthetic ``#document`` wrapper (the XSLT engine adds one) it is
    used directly; otherwise a detached wrapper is built on the fly so
    that ``/library/book`` can match the document element by name
    without mutating the tree.
    """
    top = _document_root(element)
    if top.tag == "#document":
        return top
    wrapper = Element("#document")
    wrapper.children = [top]  # deliberately not re-parenting `top`
    return wrapper


def _name_matches(step_name: str, element: Element) -> bool:
    return step_name == "*" or element.local_name == step_name or element.tag == step_name


def _evaluate_steps(start: Sequence[Element], steps: Sequence[Step]) -> Iterable[Union[Element, str]]:
    current: list[Union[Element, str]] = list(start)
    for step in steps:
        next_nodes: list[Union[Element, str]] = []
        elements = [node for node in current if isinstance(node, Element)]
        if step.axis == "self":
            candidates = elements
        elif step.axis == "parent":
            candidates = [node.parent for node in elements if node.parent is not None]
        elif step.axis == "child":
            candidates = [child for node in elements for child in node.children if _name_matches(step.name, child)]
        elif step.axis == "descendant":
            candidates = []
            for node in elements:
                for descendant in node.iter():
                    if descendant is node:
                        continue
                    if _name_matches(step.name, descendant):
                        candidates.append(descendant)
        elif step.axis == "attribute":
            values: list[Union[Element, str]] = []
            for node in elements:
                if step.name == "*":
                    values.extend(node.attributes.values())
                else:
                    value = node.get_local(step.name)
                    if value is not None:
                        values.append(value)
            current = values
            continue
        elif step.axis == "text":
            current = [node.text_content() for node in elements]
            continue
        else:  # pragma: no cover - defensive
            raise XPathError(f"unsupported axis {step.axis!r}")

        if step.axis == "self" and step.name == "*" and not step.predicates:
            next_nodes = list(candidates)
        else:
            filtered = _apply_predicates(candidates, step.predicates)
            next_nodes = list(filtered)
        current = next_nodes
    return current


def _apply_predicates(candidates: Sequence[Element], predicates: Sequence[Predicate]) -> list[Element]:
    nodes = [node for node in candidates if node is not None]
    for predicate in predicates:
        size = len(nodes)
        nodes = [
            node
            for position, node in enumerate(nodes, start=1)
            if predicate.matches(node, position, size)
        ]
    return nodes


# ----------------------------------------------------------------------
# Convenience functions
# ----------------------------------------------------------------------
def xpath_find(context: Union[Document, Element], expression: str) -> Optional[Union[Element, str]]:
    """Return the first node matching ``expression`` under ``context``."""
    return XPath(expression).first(context)


def xpath_find_all(context: Union[Document, Element], expression: str) -> list[Union[Element, str]]:
    """Return every node matching ``expression`` under ``context``."""
    return XPath(expression).select(context)
