"""Character escaping and entity handling for the XML substrate."""

from __future__ import annotations

import re

from repro.xmlkit.errors import XMLParseError, XMLSerializeError

# The five predefined XML entities.
NAMED_ENTITIES = {
    "lt": "<",
    "gt": ">",
    "amp": "&",
    "apos": "'",
    "quot": '"',
}

_ENTITY_RE = re.compile(r"&(#x?[0-9a-fA-F]+|[A-Za-z][A-Za-z0-9]*);")

# Characters legal in XML 1.0 documents.
_ILLEGAL_TEXT_RE = re.compile(
    "[^\x09\x0a\x0d\x20-퟿-�\U00010000-\U0010ffff]"
)


def is_name_start_char(char: str) -> bool:
    """Return True if ``char`` may start an XML name."""
    if char.isalpha() or char in ("_", ":"):
        return True
    code = ord(char)
    return 0xC0 <= code <= 0x2FF or 0x370 <= code <= 0x1FFF or code >= 0x2070


def is_name_char(char: str) -> bool:
    """Return True if ``char`` may appear inside an XML name."""
    return is_name_start_char(char) or char.isdigit() or char in (".", "-", "·")


def is_valid_name(name: str) -> bool:
    """Return True when ``name`` is a legal XML element/attribute name."""
    if not name:
        return False
    if not is_name_start_char(name[0]):
        return False
    return all(is_name_char(char) for char in name[1:])


def decode_entities(text: str, line: int = 0, column: int = 0) -> str:
    """Replace entity and character references with their characters."""

    def _replace(match: re.Match[str]) -> str:
        body = match.group(1)
        if body.startswith("#x") or body.startswith("#X"):
            return chr(int(body[2:], 16))
        if body.startswith("#"):
            return chr(int(body[1:]))
        if body in NAMED_ENTITIES:
            return NAMED_ENTITIES[body]
        raise XMLParseError(f"unknown entity &{body};", line, column)

    # A bare ampersand that does not introduce a reference is ill-formed.
    result = []
    position = 0
    for match in _ENTITY_RE.finditer(text):
        chunk = text[position:match.start()]
        if "&" in chunk:
            raise XMLParseError("unescaped '&' in content", line, column)
        result.append(chunk)
        result.append(_replace(match))
        position = match.end()
    tail = text[position:]
    if "&" in tail:
        raise XMLParseError("unescaped '&' in content", line, column)
    result.append(tail)
    return "".join(result)


def escape_text(text: str) -> str:
    """Escape character data for serialization."""
    _check_serializable(text)
    return text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def escape_attribute(value: str) -> str:
    """Escape an attribute value for serialization in double quotes."""
    _check_serializable(value)
    return (
        value.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace('"', "&quot;")
        .replace("\n", "&#10;")
        .replace("\t", "&#9;")
    )


def _check_serializable(text: str) -> None:
    match = _ILLEGAL_TEXT_RE.search(text)
    if match is not None:
        raise XMLSerializeError(
            f"character U+{ord(match.group(0)):04X} cannot appear in XML output"
        )
