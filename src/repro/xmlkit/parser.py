"""Tree-building XML parser on top of :mod:`repro.xmlkit.tokenizer`.

The parser enforces the well-formedness constraints that matter for
U-P2P documents: a single root element, balanced tags, no content after
the root, legal names and (optionally) namespace prefix resolvability.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from repro.xmlkit.dom import Document, Element
from repro.xmlkit.errors import XMLParseError
from repro.xmlkit.escape import is_valid_name
from repro.xmlkit.tokenizer import Token, Tokenizer, TokenType


class XMLParser:
    """Builds a :class:`~repro.xmlkit.dom.Document` from text.

    Parameters
    ----------
    check_namespaces:
        When true (the default) every prefixed element or attribute name
        must resolve to a declared namespace, mirroring what Xerces
        enforced for the original implementation.
    keep_whitespace_text:
        When false, text nodes that consist purely of whitespace between
        elements are dropped.  Schema and stylesheet parsing uses this to
        ignore indentation.
    """

    def __init__(self, *, check_namespaces: bool = True, keep_whitespace_text: bool = True) -> None:
        self._check_namespaces = check_namespaces
        self._keep_whitespace_text = keep_whitespace_text

    def parse(self, text: str) -> Document:
        """Parse ``text`` and return the document tree."""
        if not text or not text.strip():
            raise XMLParseError("document is empty")
        root: Optional[Element] = None
        version = "1.0"
        encoding = "UTF-8"
        standalone: Optional[bool] = None
        stack: list[Element] = []
        seen_declaration = False
        seen_any = False

        for token in Tokenizer(text).tokens():
            if token.type == TokenType.DECLARATION:
                if seen_any or seen_declaration:
                    raise XMLParseError(
                        "XML declaration must be the first thing in the document",
                        token.line,
                        token.column,
                    )
                seen_declaration = True
                version = token.attributes.get("version", "1.0")
                encoding = token.attributes.get("encoding", "UTF-8")
                if "standalone" in token.attributes:
                    standalone = token.attributes["standalone"] == "yes"
                continue
            if token.type in (TokenType.COMMENT, TokenType.PROCESSING, TokenType.DOCTYPE):
                seen_any = True
                continue
            if token.type == TokenType.TEXT:
                self._handle_text(token, token.value, stack, root)
                continue
            if token.type == TokenType.CDATA:
                self._handle_text(token, token.value, stack, root, is_cdata=True)
                continue
            seen_any = True
            if token.type in (TokenType.START_TAG, TokenType.EMPTY_TAG):
                element = self._make_element(token)
                if stack:
                    stack[-1].append(element)
                elif root is None:
                    root = element
                else:
                    raise XMLParseError(
                        "document must have exactly one root element",
                        token.line,
                        token.column,
                    )
                if token.type == TokenType.START_TAG:
                    stack.append(element)
                elif self._check_namespaces:
                    self._verify_namespaces(element, token)
                continue
            if token.type == TokenType.END_TAG:
                if not stack:
                    raise XMLParseError(
                        f"unexpected end tag </{token.value}>", token.line, token.column
                    )
                open_element = stack.pop()
                if open_element.tag != token.value:
                    raise XMLParseError(
                        f"end tag </{token.value}> does not match <{open_element.tag}>",
                        token.line,
                        token.column,
                    )
                if self._check_namespaces:
                    self._verify_namespaces(open_element, token)
                continue

        if stack:
            raise XMLParseError(f"unclosed element <{stack[-1].tag}>")
        if root is None:
            raise XMLParseError("document has no root element")
        return Document(root, version=version, encoding=encoding, standalone=standalone)

    # ------------------------------------------------------------------
    def _handle_text(
        self,
        token: Token,
        value: str,
        stack: list[Element],
        root: Optional[Element],
        *,
        is_cdata: bool = False,
    ) -> None:
        if not stack:
            if value.strip():
                raise XMLParseError(
                    "character data outside the root element", token.line, token.column
                )
            return
        if not self._keep_whitespace_text and not value.strip() and not is_cdata:
            return
        target = stack[-1]
        if target.children:
            target.children[-1].tail += value
        else:
            target.text += value

    def _make_element(self, token: Token) -> Element:
        if not is_valid_name(token.value):
            raise XMLParseError(f"illegal element name {token.value!r}", token.line, token.column)
        for name in token.attributes:
            bare = name[6:] if name.startswith("xmlns:") else name
            if bare and not is_valid_name(bare.replace(":", "_")):
                raise XMLParseError(f"illegal attribute name {name!r}", token.line, token.column)
        return Element(token.value, token.attributes)

    def _verify_namespaces(self, element: Element, token: Token) -> None:
        if ":" in element.tag and element.namespace is None:
            raise XMLParseError(
                f"undeclared namespace prefix {element.prefix!r}", token.line, token.column
            )
        for name in element.attributes:
            if ":" in name and not name.startswith("xmlns:") and name.split(":", 1)[0] != "xml":
                prefix = name.split(":", 1)[0]
                if element.resolve_prefix(prefix) is None:
                    raise XMLParseError(
                        f"undeclared namespace prefix {prefix!r} on attribute {name!r}",
                        token.line,
                        token.column,
                    )


def parse(text: str, *, check_namespaces: bool = True, keep_whitespace_text: bool = True) -> Document:
    """Parse an XML string into a :class:`Document`."""
    parser = XMLParser(
        check_namespaces=check_namespaces, keep_whitespace_text=keep_whitespace_text
    )
    return parser.parse(text)


def parse_file(path: Union[str, Path], **options: bool) -> Document:
    """Parse the XML file at ``path``."""
    data = Path(path).read_text(encoding="utf-8")
    return parse(data, **options)
