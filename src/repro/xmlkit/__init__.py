"""Hand-written XML substrate.

The original U-P2P relied on Xerces for XML parsing; this package is the
pure-Python substitute.  It provides:

* :mod:`repro.xmlkit.dom` — a small element tree (:class:`Element`,
  :class:`Document`) with namespace-aware names.
* :mod:`repro.xmlkit.tokenizer` and :mod:`repro.xmlkit.parser` — a
  hand-rolled well-formedness-checking XML parser.
* :mod:`repro.xmlkit.serializer` — canonical and pretty serialization.
* :mod:`repro.xmlkit.xpath` — the XPath subset used by the XSLT engine
  and by searchable-field selection.
"""

from repro.xmlkit.dom import Document, Element, QName
from repro.xmlkit.errors import XMLError, XMLParseError, XPathError
from repro.xmlkit.parser import parse, parse_file
from repro.xmlkit.serializer import serialize, pretty
from repro.xmlkit.xpath import XPath, xpath_find, xpath_find_all

__all__ = [
    "Document",
    "Element",
    "QName",
    "XMLError",
    "XMLParseError",
    "XPathError",
    "parse",
    "parse_file",
    "serialize",
    "pretty",
    "XPath",
    "xpath_find",
    "xpath_find_all",
]
