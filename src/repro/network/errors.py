"""Error types for the network substrate."""

from __future__ import annotations


class NetworkError(Exception):
    """Base class for network-layer failures."""


class UnknownPeerError(NetworkError):
    """Raised when a peer id is not part of the network."""


class DuplicatePeerError(NetworkError):
    """Raised when a peer id is added to a network that already has it."""


class PeerOfflineError(NetworkError):
    """Raised when an operation targets a peer that has left the network."""


class TransferError(NetworkError):
    """Raised when an object or attachment transfer cannot complete."""
