"""Informed routing: per-neighbour attenuated Bloom filters.

Gnutella's blind flood is the paper's message-count outlier — every hop
forwards to every neighbour whether or not anything matching lies in
that direction.  This module gives each peer a *routing index*: for
every neighbour ``v``, an **attenuated Bloom filter** — an array of
``depth`` Bloom filters where level ``d`` summarizes the searchable
content of every peer at overlay distance exactly ``d`` from ``v``
(level 0 is ``v``'s own index).  A flood hop with remaining TTL ``r``
reaches peers at distance ``0 .. r-1`` from the neighbour it forwards
to, so the probe checks levels ``0 .. min(r, depth) - 1``; when the
remaining TTL sees past the filter horizon (``r > depth``) the filter
is silent about the tail and the hop forwards unconditionally.

The probe keys are the :attr:`CompiledQuery.routing_keys` exact/token
keys, the same normalization the attribute index stores — a compiled
plan tests against a filter without re-tokenizing.  Hashing is
crc32-based double hashing (no builtin ``hash()``: filter decisions
must not depend on the process hash salt, pinned by detlint DET002).

Safety argument (the "can only save messages, never lose a result"
contract): Bloom filters have no false negatives, level unions are
supersets of each member peer's keys, and filters summarize the
*topology* graph — **including currently-offline peers' content** — so
a peer that churns back online mid-query is still admitted.  Every
criterion key of a matching peer at distance ``d*`` from neighbour
``v`` is therefore in level ``d*`` of ``v``'s filter, and any path the
blind flood delivers a result along survives pruning edge by edge.
False positives merely forward a query that finds nothing (counted as
``routing_fp_forwards``).  The argument needs filters that are current
when consulted, which holds when the overlay does not *grow* mid-query:
link repair under live membership can add a path after a hop was
already pruned, so the strict contract cells run with the static
overlay (churn included — the online flag is not part of the filter)
and the live-membership cells are pinned empirically.

Cost model: filter *state* is maintained instantly from the simulation
oracle (matching the instantaneous membership semantics when live mode
is off).  With live membership on, propagation is charged for: a
changed filter rides the next keepalive PONG to each neighbour
(``payload_bytes`` grows by the filter wire size, classified as control
traffic), and a dropped link forgets what was advertised across it —
the same lease machinery that decays the link itself — so a repaired
link pays the advertisement again.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional
from zlib import crc32

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (base imports us)
    from repro.network.base import PeerNetwork

#: second crc32 stream is salted so the two hash values are independent
_SALT = 0x9747B28C
#: per-advertisement framing: level count + bit-size descriptor
_ADVERT_HEADER_BYTES = 4


def _positions(key: str, size_bits: int, hash_count: int) -> tuple[int, ...]:
    """The ``hash_count`` bit positions of ``key``: classic double
    hashing ``h1 + i*h2`` over two independent crc32 streams (the
    stride is forced odd so it never collapses to a single position)."""
    data = key.encode("utf-8")
    h1 = crc32(data)
    h2 = crc32(data, _SALT) | 1
    return tuple((h1 + i * h2) % size_bits for i in range(hash_count))


class BloomFilter:
    """A fixed-size Bloom filter over string keys.

    The bit array is one Python int (union is ``|``, membership is a
    shift-and-mask), which keeps level merges cheap during rebuilds.
    """

    __slots__ = ("size_bits", "hash_count", "bits")

    def __init__(self, size_bits: int, hash_count: int, bits: int = 0) -> None:
        self.size_bits = size_bits
        self.hash_count = hash_count
        self.bits = bits

    def add(self, key: str) -> None:
        for position in _positions(key, self.size_bits, self.hash_count):
            self.bits |= 1 << position

    def contains_positions(self, positions: tuple[int, ...]) -> bool:
        """Membership test against pre-hashed bit positions (the probe
        hot path hashes each query key once, not once per filter)."""
        bits = self.bits
        return all(bits >> position & 1 for position in positions)

    def merge(self, other: "BloomFilter") -> None:
        self.bits |= other.bits

    def fill_ratio(self) -> float:
        """Fraction of bits set — the saturation diagnostic E11 charts
        against false-positive forwards."""
        return bin(self.bits).count("1") / self.size_bits

    def wire_bytes(self) -> int:
        return self.size_bits // 8


class AttenuatedFilter:
    """One neighbour's depth-array of Bloom filters.

    ``levels[d]`` is the union of the self-filters of every peer at
    overlay distance exactly ``d`` from the advertising neighbour.
    """

    __slots__ = ("levels",)

    def __init__(self, levels: tuple[BloomFilter, ...]) -> None:
        self.levels = levels

    def admits(self, key_groups: tuple[tuple[tuple[int, ...], ...], ...],
               level_limit: int) -> bool:
        """Could a single peer within ``level_limit`` levels satisfy the
        whole conjunction?  Each key group is one criterion's pre-hashed
        keys; a matching peer holds *all* keys of *every* group, so the
        probe asks for one level containing the complete conjunction.
        """
        for level in self.levels[:level_limit]:
            if all(level.contains_positions(positions)
                   for group in key_groups for positions in group):
                return True
        return False

    def wire_bytes(self) -> int:
        return _ADVERT_HEADER_BYTES + sum(level.wire_bytes() for level in self.levels)

    def stamp(self) -> tuple[int, ...]:
        """A content fingerprint: equal stamps mean nothing to re-advertise."""
        return tuple(level.bits for level in self.levels)


class RoutingIndex:
    """The network-wide informed-routing state (``informed_routing`` knob).

    Owns one self-filter per peer (its indexed content as exact/token
    keys), one :class:`AttenuatedFilter` per peer (what that peer
    advertises to its neighbours) and the per-directed-link
    advertisement versions that drive the keepalive piggyback cost.

    Rebuilds are lazy behind a dirty flag: content changes (publish)
    dirty one peer's self-filter, overlay changes (edge add/remove,
    peer add/remove) dirty the BFS; the next probe or advertisement
    rebuilds everything in sorted-peer order, so the state is a pure
    deterministic function of (topology, repositories, config).
    """

    def __init__(self, network: "PeerNetwork", *, filter_bits: int,
                 hash_count: int, depth: int) -> None:
        self.network = network
        self.filter_bits = filter_bits
        self.hash_count = hash_count
        self.depth = depth
        #: peers whose self-filter must be rebuilt from their index
        self._dirty_content: set[str] = set()
        #: overlay changed: every attenuated filter must be re-derived
        self._dirty_graph = True
        self._self_filters: dict[str, BloomFilter] = {}
        self._filters: dict[str, AttenuatedFilter] = {}
        #: per-peer advertisement version, bumped only when the filter
        #: content actually changed across a rebuild
        self._versions: dict[str, int] = {}
        self._stamps: dict[str, tuple[int, ...]] = {}
        #: directed link (advertiser, observer) -> last version shipped
        self._advertised: dict[tuple[str, str], int] = {}
        #: pre-hashed probe positions per key (shared across all filters)
        self._position_memo: dict[str, tuple[int, ...]] = {}

    # ------------------------------------------------------------------
    # Dirty hooks (called by the owning protocol's mutation paths)
    # ------------------------------------------------------------------
    def note_content_changed(self, peer_id: str) -> None:
        """``peer_id`` published or replicated an object."""
        self._dirty_content.add(peer_id)
        self._dirty_graph = True

    def note_overlay_changed(self) -> None:
        """An edge or peer was added or removed."""
        self._dirty_graph = True

    def forget_peer(self, peer_id: str) -> None:
        """``peer_id`` left the network for good."""
        self._self_filters.pop(peer_id, None)
        self._filters.pop(peer_id, None)
        self._versions.pop(peer_id, None)
        self._stamps.pop(peer_id, None)
        self._dirty_content.discard(peer_id)
        self._dirty_graph = True

    def forget_link(self, peer_a: str, peer_b: str) -> None:
        """The lease machinery dropped the link: both directions forget
        what was advertised, so a repaired link re-pays the bytes."""
        self._advertised.pop((peer_a, peer_b), None)
        self._advertised.pop((peer_b, peer_a), None)

    # ------------------------------------------------------------------
    # Probing
    # ------------------------------------------------------------------
    def hash_keys(self, key_groups: tuple[tuple[str, ...], ...],
                  ) -> tuple[tuple[tuple[int, ...], ...], ...]:
        """Pre-hash a plan's probe keys once per query (memoized — the
        same workload re-probes the same keys at every hop)."""
        memo = self._position_memo
        hashed = []
        for group in key_groups:
            positions = []
            for key in group:
                cached = memo.get(key)
                if cached is None:
                    cached = _positions(key, self.filter_bits, self.hash_count)
                    memo[key] = cached
                positions.append(cached)
            hashed.append(tuple(positions))
        return tuple(hashed)

    def admits(self, neighbor_id: str,
               hashed_keys: tuple[tuple[tuple[int, ...], ...], ...],
               remaining_ttl: int) -> bool:
        """Does forwarding to ``neighbor_id`` with ``remaining_ttl``
        possibly reach a peer matching the whole conjunction?

        A hop with remaining TTL ``r`` covers distances ``0 .. r-1``
        from the neighbour; past the filter horizon (``r > depth``) the
        filter is silent and the answer must be yes.
        """
        if remaining_ttl > self.depth:
            return True
        self._ensure_current()
        advertised = self._filters.get(neighbor_id)
        if advertised is None:
            return True  # nothing known about the neighbour: stay blind
        return advertised.admits(hashed_keys, remaining_ttl)

    # ------------------------------------------------------------------
    # Advertisement cost (the live-membership keepalive piggyback)
    # ------------------------------------------------------------------
    def advertisement_bytes(self, advertiser_id: str, observer_id: str) -> int:
        """Wire bytes the advertiser's next PONG to ``observer_id``
        carries: the full filter when its content changed since the
        last advertisement across this link, nothing otherwise."""
        self._ensure_current()
        version = self._versions.get(advertiser_id, 0)
        link = (advertiser_id, observer_id)
        if self._advertised.get(link) == version:
            return 0
        self._advertised[link] = version
        advertised = self._filters.get(advertiser_id)
        return advertised.wire_bytes() if advertised is not None else 0

    def mark_all_advertised(self) -> None:
        """Stamp every current link as advertised (go-live boundary:
        the bootstrap-built filters are structural setup, so steady-state
        keepalives only pay for *changes* from here on)."""
        self._ensure_current()
        for peer_id in sorted(self.network.peers):
            peer = self.network.peers[peer_id]
            version = self._versions.get(peer_id, 0)
            for neighbor_id in sorted(peer.neighbors):
                self._advertised[(peer_id, neighbor_id)] = version

    def filter_wire_bytes(self) -> int:
        """Wire size of one peer's full advertisement."""
        return _ADVERT_HEADER_BYTES + self.depth * (self.filter_bits // 8)

    # ------------------------------------------------------------------
    # Diagnostics (E11)
    # ------------------------------------------------------------------
    def fill_ratios(self) -> list[float]:
        """Level-0 fill ratio per peer, sorted by peer id."""
        self._ensure_current()
        return [self._filters[peer_id].levels[0].fill_ratio()
                for peer_id in sorted(self._filters)]

    # ------------------------------------------------------------------
    # Rebuild
    # ------------------------------------------------------------------
    def _ensure_current(self) -> None:
        if not self._dirty_graph and not self._dirty_content:
            return
        peers = self.network.peers
        for peer_id in sorted(self._dirty_content):
            if peer_id in peers:
                self._self_filters[peer_id] = self._build_self_filter(peer_id)
        self._dirty_content.clear()
        for peer_id in sorted(peers):
            if peer_id not in self._self_filters:
                self._self_filters[peer_id] = self._build_self_filter(peer_id)
        for peer_id in sorted(peers):
            rebuilt = self._build_attenuated(peer_id)
            stamp = rebuilt.stamp()
            if self._stamps.get(peer_id) != stamp:
                self._stamps[peer_id] = stamp
                self._versions[peer_id] = self._versions.get(peer_id, 0) + 1
                self._filters[peer_id] = rebuilt
        self._dirty_graph = False

    def _build_self_filter(self, peer_id: str) -> BloomFilter:
        """One peer's indexed content as a Bloom filter of the same
        exact/token keys :attr:`CompiledQuery.routing_keys` probes."""
        bloom = BloomFilter(self.filter_bits, self.hash_count)
        add = bloom.add
        for entry in self.network.peers[peer_id].repository.index.iter_entries():
            community = entry.community_id
            field = entry.field_path
            add(f"e\x1f{community}\x1f{field}\x1f{entry.value_lower}")
            for token in entry.tokens:
                add(f"t\x1f{community}\x1f{field}\x1f{token}")
                add(f"a\x1f{community}\x1f{token}")
        return bloom

    def _build_attenuated(self, peer_id: str) -> AttenuatedFilter:
        """BFS over the overlay (offline peers included — see the module
        safety argument) collecting self-filters by exact distance."""
        peers = self.network.peers
        levels = tuple(BloomFilter(self.filter_bits, self.hash_count)
                       for _ in range(self.depth))
        seen = {peer_id}
        frontier = [peer_id]
        for level in levels:
            next_frontier: list[str] = []
            for node_id in frontier:
                level.merge(self._self_filters[node_id])
                for neighbor_id in sorted(peers[node_id].neighbors):
                    if neighbor_id not in seen and neighbor_id in peers:
                        seen.add(neighbor_id)
                        next_frontier.append(neighbor_id)
            frontier = next_frontier
            if not frontier:
                break
        return AttenuatedFilter(levels)


def probe_positions(keys: Iterable[str], *, filter_bits: int,
                    hash_count: int) -> dict[str, tuple[int, ...]]:
    """Hash ``keys`` outside a :class:`RoutingIndex` (unit-test helper)."""
    return {key: _positions(key, filter_bits, hash_count) for key in keys}


def routing_index_for(network: "PeerNetwork") -> Optional[RoutingIndex]:
    """The network's routing index when informed routing is on."""
    return getattr(network, "_routing", None)
