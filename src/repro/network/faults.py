"""Deterministic fault injection for the peer-to-peer substrate.

The simulator's links are perfect by default: nothing is ever lost,
duplicated or delayed beyond the latency model, and the only failure
mode is a peer churning offline.  This module adds the faults a real
deployment actually sees — per-link message loss, duplication, extra
delay, scheduled partitions between topology regions and crash-stop
peer failures — while keeping every run bit-reproducible.

Determinism contract
--------------------
Every fault decision is drawn from a *dedicated* RNG stream, so the
latency model's per-pair jitter streams are never perturbed: a
:class:`FaultPlan` with all rates at ``0.0`` produces runs bit-identical
to ``faults=None``.  Each decision seeds its own ``random.Random`` from
``zlib.crc32`` over the message's *content identity* — plan seed,
sender, recipient and send instant, plus an occurrence index when the
same link fires more than once at the same instant.  That identity is
the same whichever execution order (or process) evaluates the send: a
global ``msg-N`` token would break run-twice reproducibility (the
counter never resets within one interpreter), and a send *ordinal*
would break process-parallel execution, where each worker only executes
the sends of its own shards and therefore counts a different ordinal
sequence.  Content keying makes fault decisions — and therefore the
drop/duplicate/retry counters — bit-identical across shard counts,
across worker processes and across interpreter hash seeds.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class PartitionWindow:
    """One scheduled link partition: traffic between the two sides is
    cut during ``[start_ms, end_ms)`` and heals afterwards.

    Only links *crossing* the cut are affected; traffic within either
    side (or touching a node named on neither side) flows normally.
    """

    start_ms: float
    end_ms: float
    left: tuple[str, ...]
    right: tuple[str, ...]


@dataclass(frozen=True)
class FaultPlan:
    """Declarative description of the faults to inject into one run.

    Rates are per-message probabilities in ``[0, 1]``; a message is
    first tested against any partition window (a deterministic cut,
    no randomness), then against loss, duplication and extra delay.
    ``link_loss`` overrides the default ``loss_rate`` for specific
    links (symmetric; ``(a, b, rate)`` covers both directions).
    ``crashes`` schedules crash-stop failures: ``(peer_id, at_ms)``
    takes the peer offline permanently at that virtual time.

    All times (partition windows, crash instants) are relative to the
    moment the plan is *installed* on a network — at construction for a
    directly-built network, at the start of the workload phase for a
    scenario (bootstrap is structural setup and stays fault-free).
    """

    seed: int = 0
    loss_rate: float = 0.0
    duplicate_rate: float = 0.0
    extra_delay_rate: float = 0.0
    extra_delay_ms: float = 0.0
    #: duplicated deliveries arrive up to this long after the original
    duplicate_spread_ms: float = 40.0
    link_loss: tuple[tuple[str, str, float], ...] = ()
    partitions: tuple[PartitionWindow, ...] = ()
    crashes: tuple[tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        for name in ("loss_rate", "duplicate_rate", "extra_delay_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be within [0, 1], got {rate!r}")
        if self.extra_delay_ms < 0 or self.duplicate_spread_ms < 0:
            raise ValueError("fault delays must be non-negative")
        for source, target, rate in self.link_loss:
            if not 0.0 <= rate <= 1.0:
                raise ValueError(
                    f"link loss rate for {source!r}<->{target!r} must be "
                    f"within [0, 1], got {rate!r}")
        for window in self.partitions:
            if window.start_ms < 0 or window.end_ms <= window.start_ms:
                raise ValueError("partition windows need 0 <= start < end")
            if not window.left or not window.right:
                raise ValueError("partition windows need nodes on both sides")
        for peer_id, at_ms in self.crashes:
            if at_ms < 0:
                raise ValueError(f"crash time for {peer_id!r} must be non-negative")


class FaultDecision:
    """What the fault model decided for one message send."""

    __slots__ = ("drop", "partitioned", "duplicate", "extra_delay_ms",
                 "duplicate_lag_ms")

    def __init__(self, *, drop: bool = False, partitioned: bool = False,
                 duplicate: bool = False, extra_delay_ms: float = 0.0,
                 duplicate_lag_ms: float = 0.0) -> None:
        self.drop = drop
        self.partitioned = partitioned
        self.duplicate = duplicate
        self.extra_delay_ms = extra_delay_ms
        self.duplicate_lag_ms = duplicate_lag_ms


#: the no-fault decision, shared: the common case allocates nothing
_CLEAN = FaultDecision()
_PARTITION_DROP = FaultDecision(drop=True, partitioned=True)
_LOSS_DROP = FaultDecision(drop=True)


class FaultModel:
    """Executable form of a :class:`FaultPlan`.

    The kernel consults :meth:`decide` once per message send (local
    deliveries — sender == recipient — are never faulted; they model
    in-process work, not a link).
    """

    def __init__(self, plan: FaultPlan, *, epoch_ms: float = 0.0) -> None:
        self.plan = plan
        #: virtual time the plan was installed; window times are
        #: interpreted relative to it
        self.epoch_ms = epoch_ms
        self._link_loss: dict[tuple[str, str], float] = {}
        for source, target, rate in plan.link_loss:
            self._link_loss[(source, target)] = rate
            self._link_loss[(target, source)] = rate
        self._partitions = [
            (window.start_ms, window.end_ms, frozenset(window.left), frozenset(window.right))
            for window in plan.partitions
        ]
        self._random_faults = bool(
            plan.loss_rate or plan.duplicate_rate or plan.extra_delay_rate
            or self._link_loss)
        # Occurrence index per (sender, recipient, instant) key: the
        # rare repeat — one event sending twice over the same link at
        # the same virtual instant — still gets distinct draws, keyed
        # by content rather than send order (see the module docstring).
        self._seen: dict[str, int] = {}

    # ------------------------------------------------------------------
    def partitioned(self, sender: str, recipient: str, now_ms: float) -> bool:
        """Is the ``sender -> recipient`` link cut at ``now_ms``?"""
        elapsed = now_ms - self.epoch_ms
        for start, end, left, right in self._partitions:
            if start <= elapsed < end and (
                    (sender in left and recipient in right)
                    or (sender in right and recipient in left)):
                return True
        return False

    def _loss_rate(self, sender: str, recipient: str) -> float:
        override = self._link_loss.get((sender, recipient))
        return override if override is not None else self.plan.loss_rate

    def _rng(self, sender: str, recipient: str, now_ms: float) -> random.Random:
        identity = f"{self.plan.seed}:{sender}:{recipient}:{now_ms:.6f}"
        occurrence = self._seen.get(identity, 0)
        self._seen[identity] = occurrence + 1
        if occurrence:
            identity = f"{identity}#{occurrence}"
        return random.Random(zlib.crc32(identity.encode("utf-8")))

    def decide(self, sender: str, recipient: str, now_ms: float) -> FaultDecision:
        """One message's fate, decided at send time.

        A partition cut is deterministic and consumes no randomness;
        all probabilistic faults draw from this message's own
        crc32-keyed stream, so enabling one fault kind never shifts
        the draws of another.
        """
        if sender == recipient:
            return _CLEAN
        if self._partitions and self.partitioned(sender, recipient, now_ms):
            return _PARTITION_DROP
        if not self._random_faults:
            return _CLEAN
        plan = self.plan
        rng = self._rng(sender, recipient, now_ms)
        # The four rolls are drawn unconditionally, in a fixed order:
        # each fault kind's outcome then depends only on the plan seed,
        # the ordinal and its own rate — changing one rate never shifts
        # another kind's per-message pattern.
        loss_roll = rng.random()
        duplicate_roll = rng.random()
        delay_roll = rng.random()
        lag_roll = rng.random()
        if loss_roll < self._loss_rate(sender, recipient):
            return _LOSS_DROP
        duplicate = duplicate_roll < plan.duplicate_rate
        extra_delay = plan.extra_delay_ms if delay_roll < plan.extra_delay_rate else 0.0
        if not duplicate and extra_delay == 0.0:
            return _CLEAN
        lag = lag_roll * plan.duplicate_spread_ms if duplicate else 0.0
        return FaultDecision(duplicate=duplicate, extra_delay_ms=extra_delay,
                             duplicate_lag_ms=lag)


def build_fault_model(plan: Optional[FaultPlan], *,
                      epoch_ms: float = 0.0) -> Optional[FaultModel]:
    """A :class:`FaultModel` for ``plan``, or ``None`` for no faults."""
    if plan is None:
        return None
    if not isinstance(plan, FaultPlan):
        raise TypeError(f"faults must be a FaultPlan or None, got {type(plan).__name__}")
    return FaultModel(plan, epoch_ms=epoch_ms)
