"""Population dynamics: churn, permanent departures, arrivals, crowds.

The paper's robustness claims only mean something when the population
moves.  :class:`PopulationModel` generalizes the original on/off churn
model into the full set of lifecycle patterns the experiments need:

* **session churn** — exponentially distributed online sessions and
  absences, the classic early-file-sharing measurement model;
* **permanent departures** — a seeded fraction of departures never
  return (optionally announcing themselves first, so graceful and
  crash exits can be compared);
* **staged arrivals** — brand-new peers joining mid-run at a constant
  rate (population growth);
* **flash crowds** — a burst of simultaneous arrivals at one instant.

Everything is seeded and *everything is delivered as events on the
network's simulator queue* (via the no-allocation ``post`` fast path),
so population changes interleave deterministically with in-flight
queries, downloads and maintenance traffic.  With the network's
``live_membership`` knob on, each transition turns into real protocol
traffic (joins, heartbeats, re-registrations); with it off the model
degrades to exactly the old free-toggle behaviour.

Interplay with informed routing (``repro.network.routing``): the
attenuated Bloom filters summarize the *topology* graph, offline
peers' content included, precisely because this model toggles peers
on and off mid-query — a churned-away peer that returns before the
flood fringe arrives must still be admitted, so churn alone can never
turn a filter decision into a lost result.  Only overlay *growth*
(live-membership link repair) can race a flood, which is why the
strict routing contract runs against the static overlay.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from repro.network.base import PeerNetwork


@dataclass(frozen=True)
class MembershipEvent:
    """One recorded population change."""

    time_ms: float
    peer_id: str
    kind: str  # "depart" | "return" | "arrive" | "depart-permanent"

    @property
    def online(self) -> bool:
        """Whether the peer is online after this event (legacy churn
        consumers read ``event.online`` off the old ChurnEvent)."""
        return self.kind in ("return", "arrive")


@dataclass
class PopulationModel:
    """Seeded population dynamics driven by the network's simulator."""

    network: PeerNetwork
    mean_session_ms: float = 30 * 60 * 1000.0
    mean_absence_ms: float = 10 * 60 * 1000.0
    #: probability that any given departure is permanent (never returns)
    departure_permanence: float = 0.0
    #: probability that a permanent departure says goodbye first (live
    #: membership: UNREGISTER/LEAVE/LEAF-DETACH traffic instead of
    #: leaving stale state behind)
    graceful_fraction: float = 0.0
    seed: int = 0
    events: list[MembershipEvent] = field(default_factory=list)
    _rng: random.Random = field(init=False, repr=False)
    _arrivals: int = field(init=False, repr=False, default=0)
    #: peers that left for good: their queued churn returns are voided,
    #: so a permanent departure sticks even if it struck mid-absence
    _gone: set[str] = field(init=False, repr=False, default_factory=set)

    def __post_init__(self) -> None:
        if self.mean_session_ms <= 0 or self.mean_absence_ms <= 0:
            raise ValueError("mean session and absence durations must be positive")
        if not 0.0 <= self.departure_permanence <= 1.0:
            raise ValueError("departure_permanence must be within [0, 1]")
        if not 0.0 <= self.graceful_fraction <= 1.0:
            raise ValueError("graceful_fraction must be within [0, 1]")
        self._rng = random.Random(self.seed)

    # ------------------------------------------------------------------
    # Session churn
    # ------------------------------------------------------------------
    def start(self, peer_ids: Optional[list[str]] = None) -> None:
        """Schedule the first departure of every (or the given) peer."""
        ids = peer_ids if peer_ids is not None else list(self.network.peers)
        for peer_id in ids:
            self._schedule_departure(peer_id)

    def _schedule_departure(self, peer_id: str) -> None:
        delay = self._rng.expovariate(1.0 / self.mean_session_ms)
        self.network.simulator.post(delay, self._depart, peer_id)

    def _schedule_return(self, peer_id: str) -> None:
        delay = self._rng.expovariate(1.0 / self.mean_absence_ms)
        self.network.simulator.post(delay, self._return, peer_id)

    def _depart(self, peer_id: str) -> None:
        if peer_id not in self.network.peers or peer_id in self._gone:
            return
        now = self.network.simulator.now
        # Short-circuit so a permanence of zero draws nothing extra and
        # the event stream stays bit-identical to the legacy churn model.
        if self.departure_permanence > 0.0 \
                and self._rng.random() < self.departure_permanence:
            graceful = self.graceful_fraction > 0.0 \
                and self._rng.random() < self.graceful_fraction
            self._gone.add(peer_id)
            self.network.depart(peer_id, graceful=graceful)
            self.events.append(MembershipEvent(now, peer_id, "depart-permanent"))
            return
        self.network.set_online(peer_id, False)
        self.events.append(MembershipEvent(now, peer_id, "depart"))
        self._schedule_return(peer_id)

    def _return(self, peer_id: str) -> None:
        if peer_id not in self.network.peers or peer_id in self._gone:
            return
        self.network.set_online(peer_id, True)
        self.events.append(MembershipEvent(self.network.simulator.now, peer_id, "return"))
        self._schedule_departure(peer_id)

    # ------------------------------------------------------------------
    # Arrivals
    # ------------------------------------------------------------------
    def schedule_arrivals(self, count: int, *, start_ms: float = 0.0,
                          interval_ms: float = 0.0, prefix: str = "arrival",
                          churn: bool = False) -> list[str]:
        """Schedule ``count`` brand-new peers to join, the first
        ``start_ms`` from now and one every ``interval_ms`` after.

        With ``churn`` set, each newcomer enters the session-churn
        rotation after arriving.  Returns the (deterministic) ids the
        newcomers will use.
        """
        if count < 0:
            raise ValueError("the arrival count must be non-negative")
        if start_ms < 0 or interval_ms < 0:
            raise ValueError("arrival times must be non-negative")
        ids = []
        for offset in range(count):
            peer_id = f"{prefix}-{self._arrivals:04d}"
            self._arrivals += 1
            ids.append(peer_id)
            self.network.simulator.post(start_ms + offset * interval_ms,
                                        self._arrive, peer_id, churn)
        return ids

    def flash_crowd(self, count: int, *, at_ms: float, prefix: str = "crowd",
                    churn: bool = False) -> list[str]:
        """A burst: ``count`` peers all arriving ``at_ms`` from now."""
        return self.schedule_arrivals(count, start_ms=at_ms, interval_ms=0.0,
                                      prefix=prefix, churn=churn)

    def _arrive(self, peer_id: str, churn: bool) -> None:
        if peer_id in self.network.peers:
            return
        self.network.create_peer(peer_id)
        self.events.append(MembershipEvent(self.network.simulator.now, peer_id, "arrive"))
        if churn:
            self._schedule_departure(peer_id)

    # ------------------------------------------------------------------
    # Scheduled permanent departures
    # ------------------------------------------------------------------
    def schedule_departure(self, peer_id: str, *, at_ms: float,
                           graceful: bool = False) -> None:
        """Make ``peer_id`` leave for good ``at_ms`` from now."""
        if at_ms < 0:
            raise ValueError("the departure time must be non-negative")
        self.network.simulator.post(at_ms, self._depart_forever, peer_id, graceful)

    def _depart_forever(self, peer_id: str, graceful: bool) -> None:
        if peer_id not in self.network.peers or peer_id in self._gone:
            return
        # Marking the peer gone voids any queued churn return, so the
        # departure is permanent even when it strikes mid-absence (the
        # peer was already offline and ``depart`` is then a no-op).
        self._gone.add(peer_id)
        self.network.depart(peer_id, graceful=graceful)
        self.events.append(MembershipEvent(self.network.simulator.now,
                                           peer_id, "depart-permanent"))

    # ------------------------------------------------------------------
    def expected_availability(self) -> float:
        """Steady-state probability that a churning peer is online."""
        return self.mean_session_ms / (self.mean_session_ms + self.mean_absence_ms)

    def observed_availability(self) -> float:
        """Fraction of peers currently online."""
        peers = self.network.peers
        if not peers:
            return 0.0
        return len(self.network.online_peers()) / len(peers)

    def departures(self) -> list[MembershipEvent]:
        return [event for event in self.events if not event.online]

    def arrivals(self) -> list[MembershipEvent]:
        return [event for event in self.events if event.kind == "arrive"]
