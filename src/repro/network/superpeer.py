"""FastTrack-style super-peer network organisation.

A fraction of well-connected peers are promoted to *super-peers*.  Leaf
peers attach to one super-peer and upload the searchable metadata of
their shared objects to it (exactly what FastTrack and later Gnutella
ultrapeers did).  A query travels from the leaf to its super-peer and
is then relayed only among super-peers, each of which answers from its
aggregated index — far fewer messages than full flooding while keeping
much better coverage than a TTL-limited flood.

On the event kernel the leaf's QUERY is delivered to its entry
super-peer after one link latency; the entry answers from its own
aggregated index and relays one copy to every other online super-peer,
each of which answers independently as its copy arrives.  A super-peer
that churns offline while a relay is in flight simply never answers —
no special-casing, the dropped delivery is the failure model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.engine.kernel import EventKernel, QueryContext
from repro.engine.local import local_matches
from repro.network.base import PeerNetwork, SearchResult
from repro.network.messages import (
    Message,
    MessageType,
    leaf_attach_message,
    leaf_detach_message,
    metadata_wire_bytes,
    ping_message,
    pong_message,
    query_hit_message,
    query_message,
    register_message,
)
from repro.network.peers import Peer
from repro.storage.cache import QueryResultCache
from repro.storage.index import AttributeIndex
from repro.storage.interning import intern_view
from repro.storage.query import Query


@dataclass
class _SuperPeerState:
    """Index and bookkeeping one super-peer maintains for its leaves."""

    index: AttributeIndex = field(default_factory=AttributeIndex)
    records: dict[str, tuple[str, str, dict[str, tuple[str, ...]], str, int]] = \
        field(default_factory=dict)
    # replica key -> (community_id, title, metadata view, provider_id,
    # metadata wire bytes).  The tuple-valued metadata view and its byte
    # count are built once at registration, so answering a query shares
    # them with every generated SearchResult instead of re-copying.
    leaves: set[str] = field(default_factory=set)
    #: live-membership soft state: leaf id -> virtual time its last
    #: heartbeat (PING / LEAF-ATTACH / REGISTER) arrived here
    last_heard: dict[str, float] = field(default_factory=dict)
    #: this super-peer's result cache (``result_caching`` mode): it
    #: lives in the super's RAM and dies with the state on departure
    cache: Optional[QueryResultCache] = None


class SuperPeerProtocol(PeerNetwork):
    """Two-tier super-peer / leaf organisation."""

    protocol_name = "super-peer"

    def __init__(self, *, super_peer_ratio: float = 0.1, max_leaves: int = 50, **kwargs) -> None:
        super().__init__(**kwargs)
        if not 0.0 < super_peer_ratio <= 1.0:
            raise ValueError("super_peer_ratio must be in (0, 1]")
        self.super_peer_ratio = super_peer_ratio
        self.max_leaves = max_leaves
        self._states: dict[str, _SuperPeerState] = {}

    # ------------------------------------------------------------------
    # Role assignment and attachment
    # ------------------------------------------------------------------
    def elect_super_peers(self, count: Optional[int] = None) -> list[str]:
        """Promote ``count`` peers (default: ratio of population) to super-peers
        and (re)attach every leaf to the least-loaded online super-peer."""
        online = self.online_peers()
        if not online:
            return []
        if count is None:
            count = max(1, round(len(online) * self.super_peer_ratio))
        count = min(count, len(online))
        # Stable election: lowest peer ids become super-peers, which keeps
        # experiments deterministic across runs.
        chosen = sorted(online, key=lambda peer: peer.peer_id)[:count]
        chosen_ids = {peer.peer_id for peer in chosen}
        for peer in self.peers.values():
            peer.is_super_peer = peer.peer_id in chosen_ids
            if peer.is_super_peer:
                peer.super_peer_id = peer.peer_id
                self._states.setdefault(peer.peer_id, _SuperPeerState())
        for super_id in list(self._states):
            if super_id not in chosen_ids:
                del self._states[super_id]
        for peer in self.online_peers():
            if not peer.is_super_peer:
                self._attach_leaf(peer)
        return sorted(chosen_ids)

    def _attach_leaf(self, leaf: Peer) -> None:
        candidates = [
            (len(state.leaves), super_id)
            for super_id, state in self._states.items()
            if self.peers[super_id].online and len(state.leaves) < self.max_leaves
        ]
        if not candidates:
            # Everything full: attach to the globally least loaded anyway.
            candidates = [
                (len(state.leaves), super_id)
                for super_id, state in self._states.items()
                if self.peers[super_id].online
            ]
        if not candidates:
            leaf.super_peer_id = None
            return
        _, super_id = min(candidates)
        previous = leaf.super_peer_id
        if previous and previous in self._states:
            self._detach_leaf(leaf, previous)
        leaf.super_peer_id = super_id
        state = self._states[super_id]
        state.leaves.add(leaf.peer_id)
        # The leaf re-uploads its metadata to its new super-peer.
        for stored in leaf.repository.documents:
            self._register(leaf.peer_id, super_id, stored.community_id, stored.resource_id,
                           stored.metadata, stored.title)

    def _detach_leaf(self, leaf: Peer, super_id: str) -> None:
        state = self._states.get(super_id)
        if state is None:
            return
        state.leaves.discard(leaf.peer_id)
        if state.cache is not None:
            state.cache.invalidate_provider(leaf.peer_id)
        for resource_id in [rid for rid, record in state.records.items() if record[3] == leaf.peer_id]:
            state.index.remove(resource_id)
            del state.records[resource_id]

    # ------------------------------------------------------------------
    # Churn hooks
    # ------------------------------------------------------------------
    def _on_peer_departed(self, peer: Peer) -> None:
        if peer.is_super_peer:
            # Sorted, not raw set order: orphans re-attach least-loaded
            # first-come, so the iteration order decides the new
            # leaf->super map.  Raw set[str] order varies with the
            # per-process string-hash salt (PYTHONHASHSEED), which made
            # super-peer churn runs irreproducible across processes.
            orphans = sorted(self._states.get(peer.peer_id, _SuperPeerState()).leaves)
            self._states.pop(peer.peer_id, None)
            peer.is_super_peer = False
            for orphan_id in orphans:
                orphan = self.peers.get(orphan_id)
                if orphan is not None and orphan.online:
                    self._attach_leaf(orphan)
        elif peer.super_peer_id:
            self._detach_leaf(peer, peer.super_peer_id)

    def _on_peer_returned(self, peer: Peer) -> None:
        if not self._states:
            self.elect_super_peers()
            return
        self._attach_leaf(peer)

    def _on_peer_removed(self, peer: Peer) -> None:
        self._on_peer_departed(peer)

    # ------------------------------------------------------------------
    # Live membership: leaves attach with LEAF-ATTACH + REGISTER
    # traffic, heartbeat their super each tick, and re-home themselves
    # (promoting a replacement super when none remain) only once the
    # heartbeat lease lapses.  A super's record of a departed leaf
    # persists — stale — until the leaf's silence exceeds the lease.
    # ------------------------------------------------------------------
    def _on_peer_joined_live(self, peer: Peer) -> None:
        peer.is_super_peer = False
        peer.super_peer_id = None
        self._live_attach(peer)

    def _on_peer_left_live(self, peer: Peer) -> None:
        if peer.is_super_peer:
            # The aggregated index lived in the departed super's RAM and
            # dies with it; its leaves only find out through heartbeats.
            self._states.pop(peer.peer_id, None)
            peer.is_super_peer = False

    def _announce_departure_live(self, peer: Peer) -> None:
        if not peer.is_super_peer and peer.super_peer_id is not None:
            self.kernel.send(leaf_detach_message(peer.peer_id, peer.super_peer_id))

    def _live_attach(self, peer: Peer) -> None:
        """Attach ``peer`` as a leaf (or promote it when no super is
        reachable), paying the attach + full metadata re-upload."""
        now = self.simulator.now
        candidates = sorted(super_id for super_id in self._states
                            if super_id in self.peers and self.peers[super_id].online)
        if not candidates:
            self._promote_super(peer)
            return
        target = min(candidates,
                     key=lambda super_id: (len(self._states[super_id].leaves), super_id))
        peer.super_peer_id = target
        # Grace stamp: trust the new super until the first heartbeat
        # round has had a chance to be answered.
        peer.last_pong_ms[target] = now
        # Attachment and the metadata re-upload are the leaf's whole
        # searchability — reliable delivery retries them under faults.
        self.send_reliable(leaf_attach_message(peer.peer_id, target))
        for stored in peer.repository.documents:
            metadata = stored.metadata
            metadata_bytes = metadata_wire_bytes(metadata)
            self.send_reliable(register_message(
                peer.peer_id, target, community_id=stored.community_id,
                resource_id=stored.resource_id, metadata_bytes=metadata_bytes,
                payload_object=(dict(metadata), stored.title)))

    def _promote_super(self, peer: Peer) -> None:
        """Deterministic promotion: the peer that found no reachable
        super becomes one itself (maintenance iterates peers in sorted
        order, so the lowest-id orphan promotes first)."""
        peer.is_super_peer = True
        peer.super_peer_id = peer.peer_id
        self._states.setdefault(peer.peer_id, _SuperPeerState())
        for stored in peer.repository.documents:
            metadata = stored.metadata
            metadata_bytes = metadata_wire_bytes(metadata)
            self._insert_record(peer.peer_id, peer.peer_id, stored.community_id,
                                stored.resource_id, metadata, stored.title,
                                metadata_bytes)

    def _purge_leaf(self, state: _SuperPeerState, leaf_id: str, *,
                    now: Optional[float] = None) -> None:
        """Drop one leaf and its records from a super's soft state.
        With ``now`` given, the purge is a staleness repair and the
        window since the leaf's departure is recorded."""
        state.leaves.discard(leaf_id)
        state.last_heard.pop(leaf_id, None)
        if state.cache is not None:
            # The super learned this leaf is gone (a graceful LEAF-DETACH
            # or its heartbeat lease lapsing): cached answers naming it
            # die at the same moment its records do, so a stale cached
            # hit never outlives the membership staleness window here.
            state.cache.invalidate_provider(leaf_id)
        stale_keys = [key for key, record in state.records.items()
                      if record[3] == leaf_id]
        for key in stale_keys:
            if now is not None:
                self._note_staleness(leaf_id, now)
            state.index.remove(key)
            del state.records[key]

    def _on_maintenance_tick(self, now: float) -> None:
        lease = self.heartbeat_lease_ms
        for peer_id in sorted(self.peers):
            peer = self.peers[peer_id]
            if not peer.online:
                continue
            if peer.is_super_peer:
                state = self._states.get(peer_id)
                if state is None:
                    continue
                for leaf_id in sorted(state.leaves):
                    if state.last_heard.get(leaf_id, 0.0) <= now - lease:
                        self._purge_leaf(state, leaf_id, now=now)
                continue
            super_id = peer.super_peer_id
            if super_id is None or super_id not in self._states \
                    or peer.last_pong_ms.get(super_id, 0.0) <= now - lease:
                # The super went silent (or was never reachable): re-home.
                self._live_attach(peer)
            else:
                self.kernel.send(ping_message(peer_id, super_id))

    def _stamp_freshness(self, now: float) -> None:
        for state in self._states.values():
            state.last_heard = {leaf_id: now for leaf_id in sorted(state.leaves)}
        for peer in self.peers.values():
            if not peer.is_super_peer and peer.super_peer_id is not None:
                peer.last_pong_ms[peer.super_peer_id] = now

    # ------------------------------------------------------------------
    # Live-membership handlers
    # ------------------------------------------------------------------
    def _on_register(self, peer: Optional[Peer], message: Message, context) -> None:
        """A metadata upload arrived.  If the recipient stopped being a
        super in the meantime the upload is simply lost — the sender's
        heartbeats will eventually notice and re-home it."""
        if peer is None or message.payload_object is None:
            return
        state = self._states.get(peer.peer_id)
        if state is None:
            return
        metadata, title = message.payload_object
        self.stats.record_registration()
        self._insert_record(message.sender, peer.peer_id, message.community_id,
                            message.resource_id, metadata, title,
                            message.payload_bytes)
        state.last_heard[message.sender] = self.simulator.now

    def _on_leaf_attach(self, peer: Optional[Peer], message: Message, context) -> None:
        if peer is None:
            return
        state = self._states.get(peer.peer_id)
        if state is None:
            return
        state.leaves.add(message.sender)
        state.last_heard[message.sender] = self.simulator.now

    def _on_leaf_detach(self, peer: Optional[Peer], message: Message, context) -> None:
        if peer is None:
            return
        state = self._states.get(peer.peer_id)
        if state is not None:
            self._purge_leaf(state, message.sender)

    def _on_ping(self, peer: Optional[Peer], message: Message, context) -> None:
        """A leaf heartbeat.  A recipient that is no super any more
        stays silent, so the leaf's lease lapses and it re-homes."""
        if peer is None:
            return
        state = self._states.get(peer.peer_id)
        if state is None:
            return
        state.last_heard[message.sender] = self.simulator.now
        self.kernel.send(pong_message(peer.peer_id, message.sender,
                                      message_id=message.message_id))

    def _on_pong(self, peer: Optional[Peer], message: Message, context) -> None:
        if peer is not None:
            peer.last_pong_ms[message.sender] = self.simulator.now

    # ------------------------------------------------------------------
    # Primitives
    # ------------------------------------------------------------------
    def publish(self, peer_id: str, community_id: str, resource_id: str,
                metadata: dict[str, list[str]], *, title: str = "") -> None:
        peer = self._require_peer(peer_id)
        self.replicas.note_original(resource_id, peer_id, at_ms=self.simulator.now)
        if self.live_membership:
            self._publish_live(peer, community_id, resource_id, metadata, title)
            return
        if not self._states:
            self.elect_super_peers()
        target = peer.peer_id if peer.is_super_peer else peer.super_peer_id
        if target is None:
            self._attach_leaf(peer)
            target = peer.super_peer_id
        if target is None:
            return
        self._register(peer_id, target, community_id, resource_id, metadata, title,
                       count_message=not peer.is_super_peer)

    def _publish_live(self, peer: Peer, community_id: str, resource_id: str,
                      metadata: dict[str, list[str]], title: str) -> None:
        """Live publication: a super-peer indexes its own object for
        free; a leaf ships a REGISTER that lands when it lands.  An
        orphaned leaf (its super died, repair has not run yet) shares
        nothing — the next re-attachment re-uploads everything."""
        metadata_bytes = metadata_wire_bytes(metadata)
        if peer.is_super_peer and peer.peer_id in self._states:
            self._insert_record(peer.peer_id, peer.peer_id, community_id,
                                resource_id, metadata, title, metadata_bytes)
            return
        target = peer.super_peer_id
        if target is None:
            return
        self.send_reliable(register_message(
            peer.peer_id, target, community_id=community_id,
            resource_id=resource_id, metadata_bytes=metadata_bytes,
            payload_object=(dict(metadata), title)))

    def _register(self, peer_id: str, super_id: str, community_id: str, resource_id: str,
                  metadata: dict[str, list[str]], title: str, *, count_message: bool = True) -> None:
        metadata_bytes = metadata_wire_bytes(metadata)
        if count_message and peer_id != super_id:
            message = register_message(peer_id, super_id, community_id=community_id,
                                       resource_id=resource_id, metadata_bytes=metadata_bytes)
            self._account(message)
            self.stats.record_registration()
        self._insert_record(peer_id, super_id, community_id, resource_id,
                            metadata, title, metadata_bytes)

    def _insert_record(self, peer_id: str, super_id: str, community_id: str,
                       resource_id: str, metadata: dict[str, list[str]],
                       title: str, metadata_bytes: int) -> None:
        state = self._states.setdefault(super_id, _SuperPeerState())
        if state.cache is not None:
            # A registration arriving is the invalidation traffic: the
            # super's catalog version moves, stale cached answers drop.
            state.cache.bump_version()
        replica_key = f"{resource_id}@{peer_id}"
        view = intern_view(metadata)
        state.records[replica_key] = (community_id, title, view, peer_id, metadata_bytes)
        state.index.add(community_id, replica_key, metadata)

    def _state_cache(self, state: _SuperPeerState, *, create: bool = True
                     ) -> Optional[QueryResultCache]:
        if not self.result_caching:
            return None
        if state.cache is None and create:
            state.cache = QueryResultCache(capacity=self.cache_capacity,
                                           ttl_ms=self.cache_ttl_ms)
        return state.cache

    def _iter_caches(self):
        yield from super()._iter_caches()
        for state in self._states.values():
            if state.cache is not None:
                yield state.cache

    # ------------------------------------------------------------------
    def start_search(self, origin_id: str, query: Query, *, max_results: int = 100,
                     **kwargs) -> QueryContext:
        origin = self._require_peer(origin_id)
        if not self._states and not self.live_membership:
            self.elect_super_peers()
        context = self.new_context(
            origin_id, query, max_results=max_results,
            query_id=query.query_id or f"sp-{self.next_query_number()}",
        )
        wire_xml, wire_bytes = self.wire_form(query, context.plan)
        context.extra["query_xml"] = wire_xml
        context.extra["query_bytes"] = wire_bytes

        # Local index is always consulted first.
        for stored in local_matches(origin.repository, query, plan=context.plan,
                                    limit=max_results):
            context.add_result(SearchResult.from_stored(origin_id, stored, hops=0))

        entry = origin.peer_id if origin.is_super_peer else origin.super_peer_id
        if entry is None and not self.live_membership:
            self._attach_leaf(origin)
            entry = origin.super_peer_id
        context.extra["entry"] = entry
        if entry is None:
            # Live mode: an orphaned leaf answers locally only, until
            # its own maintenance heartbeat re-homes it.
            self.kernel.finish_if_idle(context)
            return context

        if origin.is_super_peer:
            # The origin IS the entry super-peer: answer and relay now.
            self._answer_at_super(self.peers[entry], hops=0, context=context)
        else:
            # The entry may be a dead super the origin has not noticed
            # yet (live mode): the kernel drops the delivery and the
            # query quiesces with local results only.
            message = query_message(origin_id, entry, wire_xml,
                                    community_id=query.community_id,
                                    payload_bytes=wire_bytes)
            message.hops = 1
            self.kernel.send(message, context=context)
        self.kernel.finish_if_idle(context)
        return context

    # ------------------------------------------------------------------
    # Message handlers
    # ------------------------------------------------------------------
    def _register_handlers(self, kernel: EventKernel) -> None:
        super()._register_handlers(kernel)
        kernel.register(MessageType.QUERY, self._on_query)
        kernel.register(MessageType.REGISTER, self._on_register)
        kernel.register(MessageType.LEAF_ATTACH, self._on_leaf_attach)
        kernel.register(MessageType.LEAF_DETACH, self._on_leaf_detach)
        kernel.register(MessageType.PING, self._on_ping)
        kernel.register(MessageType.PONG, self._on_pong)

    def _on_query(self, peer: Optional[Peer], message: Message,
                  context: Optional[QueryContext]) -> None:
        if peer is None or context is None:
            return
        if self.live_membership and peer.peer_id not in self._states:
            # The leaf's believed super was demoted while the query was
            # in flight: the message is lost, like any stale-state cost.
            return
        self._answer_at_super(peer, hops=message.hops, context=context)

    def _answer_at_super(self, super_peer: Peer, *, hops: int, context: QueryContext) -> None:
        """Answer from one super-peer's aggregated index; the entry
        super-peer additionally relays to every other online super-peer.
        Results ride the QUERY-HIT and count only on arrival at the
        origin; the room they will occupy is claimed here."""
        super_id = super_peer.peer_id
        context.peers_probed += 1
        if self.result_caching and super_id == context.extra.get("entry"):
            # The entry super is where this organisation's repeats
            # concentrate (its leaf fan-in): a cached answer serves the
            # whole network's result set and skips the relay broadcast.
            state = self._states.get(super_id)
            cached = (state.cache.get(self._context_cache_key(context), self.simulator.now)
                      if state is not None and state.cache is not None else None)
            if cached is not None:
                self._serve_cached_at_entry(super_peer, hops, context, cached)
                return
            self.stats.record_cache_miss()
        results: list[SearchResult] = []
        metadata_bytes = 0
        room = context.room()
        for resource_id, community_id, title, view, provider_id, record_bytes in \
                self._matches_at(super_id, context):
            if len(results) >= room:
                break
            provider = self.peers.get(provider_id)
            if provider is None or not provider.online or provider_id == context.origin_id:
                continue
            result = SearchResult(
                provider_id=provider_id,
                resource_id=resource_id,
                community_id=community_id,
                title=title,
                metadata=view,
                hops=hops + 1,
            )
            results.append(result)
            metadata_bytes += record_bytes
        if results:
            context.claim(len(results))
            # One hit message per hop of the reverse path (at least one).
            hit = query_hit_message(super_id, context.origin_id, result_count=len(results),
                                    metadata_bytes=metadata_bytes,
                                    message_id=f"sp-{len(self.stats.queries)}")
            hit.carried_results = tuple(results)
            self.kernel.send(hit, context=context, copies=hops or 1,
                             latency_ms=self.simulator.now - context.started_at)
        if super_id == context.extra.get("entry"):
            query_xml = context.extra["query_xml"]
            query_bytes = context.extra["query_bytes"]
            for other_id in sorted(self._states):
                if other_id == super_id:
                    continue
                other = self.peers.get(other_id)
                if other is None or not other.online:
                    continue
                relay = query_message(super_id, other_id, query_xml,
                                      community_id=context.query.community_id,
                                      payload_bytes=query_bytes)
                relay.hops = hops + 1
                self.kernel.send(relay, context=context)

    def _serve_cached_at_entry(self, super_peer: Peer, hops: int,
                               context: QueryContext, cached) -> None:
        """Serve a cached result set from the entry super-peer.

        A super-peer origin answers itself directly (no message); a
        leaf origin gets one QUERY-HIT back.  Either way the relay to
        the other super-peers — the organisation's per-query broadcast
        cost — never happens."""
        if super_peer.peer_id == context.origin_id:
            self._serve_cached_locally(context, cached)
            return
        self._send_cached_hit(super_peer.peer_id, context, cached,
                              message_id=f"spc-{self.next_query_number()}",
                              copies=hops or 1)

    def _cache_store(self, context: QueryContext, response) -> None:
        """The finished response fills the entry super-peer's cache, the
        fan-in point every leaf behind it shares."""
        entry = context.extra.get("entry")
        if entry is None:
            return
        state = self._states.get(entry)
        entry_peer = self.peers.get(entry)
        if state is None or entry_peer is None or not entry_peer.online:
            return
        self._store_response_at(self._state_cache(state), context, response)

    def _parallel_serve_probe(self, message: Message, context, at_ms: float) -> bool:
        """A queued QUERY serves from the entry super-peer's cache iff
        it targets the context's entry and the entry holds a live entry
        (the branch ``_answer_at_super`` takes, read side-effect free)."""
        if not self.result_caching or context is None:
            return False
        if message.type is not MessageType.QUERY:
            return False
        if message.recipient != context.extra.get("entry"):
            return False
        state = self._states.get(message.recipient)
        if state is None or state.cache is None:
            return False
        return state.cache.peek(self._context_cache_key(context), at_ms) is not None

    # ------------------------------------------------------------------
    def _matches_at(
        self, super_id: str, context: QueryContext
    ) -> list[tuple[str, str, str, dict[str, tuple[str, ...]], str, int]]:
        """Matching records at one super-peer.

        Returns tuples ``(resource_id, community_id, title, metadata
        view, provider_id, metadata bytes)``.  The aggregated index keys
        replicas as ``"<resource_id>@<provider>"`` so the same object
        shared by two leaves stays distinguishable; the bare id is
        recovered here.  Evaluation goes through the context's compiled
        plan when one exists.
        """
        state = self._states.get(super_id)
        if state is None:
            return []
        evaluator = context.plan if context.plan is not None else context.query
        if evaluator.is_empty:
            keys = sorted(key for key, record in state.records.items()
                          if record[0] == evaluator.community_id)
        else:
            keys = sorted(evaluator.evaluate(state.index))
        matches = []
        for key in keys:
            record = state.records.get(key)
            if record is None:
                continue
            community_id, title, view, provider_id, record_bytes = record
            bare_id = key.rsplit("@", 1)[0]
            matches.append((bare_id, community_id, title, view, provider_id, record_bytes))
        return matches

    def super_peer_ids(self) -> list[str]:
        return sorted(self._states)

    def leaves_of(self, super_id: str) -> set[str]:
        state = self._states.get(super_id)
        return set(state.leaves) if state else set()
