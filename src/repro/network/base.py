"""The abstract peer-network interface.

The paper's future-work section proposes modelling "the peer-to-peer
layer as providing a generic interface with primitives for create,
search and retrieve".  :class:`PeerNetwork` is exactly that interface;
the three protocol adapters implement it, and the U-P2P core is written
against it only — which is the protocol-independence property the
experiments test.
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Optional

from repro.engine.kernel import EventKernel, QueryContext, RetrieveContext
from repro.network.errors import (
    DuplicatePeerError,
    PeerOfflineError,
    TransferError,
    UnknownPeerError,
)
from repro.network.messages import (
    Message,
    MessageType,
    attachment_transfer,
    download_request,
    download_response,
    query_hit_message,
)
from repro.network.peers import Peer
from repro.network.simulator import NetworkSimulator
from repro.network.stats import DownloadRecord, NetworkStats, QueryRecord
from repro.storage.cache import CacheEntry, QueryResultCache
from repro.storage.document_store import StoredObject
from repro.storage.errors import ObjectNotFoundError
from repro.storage.plan import CompiledQuery, compile_query
from repro.storage.query import Query
from repro.storage.replicas import ReplicaRegistry


@dataclass(frozen=True)
class SearchResult:
    """One hit returned by a network search.

    The paper specifies that "results will be returned from the network
    and will consist of full meta-data for each search result", so the
    result carries the provider, the resource id and the searchable
    metadata (not the full object — that is what retrieve is for).
    """

    provider_id: str
    resource_id: str
    community_id: str
    title: str
    metadata: dict[str, tuple[str, ...]] = field(default_factory=dict)
    hops: int = 0

    @classmethod
    def from_stored(cls, provider_id: str, stored: StoredObject, *, hops: int = 0) -> "SearchResult":
        # Zero-copy: the stored object's tuple-valued metadata view is
        # built once and shared by every result generated for it.
        return cls(
            provider_id=provider_id,
            resource_id=stored.resource_id,
            community_id=stored.community_id,
            title=stored.title,
            metadata=stored.metadata_view(),
            hops=hops,
        )

    def metadata_bytes(self) -> int:
        """Approximate wire size of the carried metadata."""
        return sum(
            len(path) + sum(len(value) for value in values)
            for path, values in self.metadata.items()
        )


@dataclass
class SearchResponse:
    """Everything a search produced, including its cost."""

    query: Query
    results: list[SearchResult] = field(default_factory=list)
    messages_sent: int = 0
    bytes_sent: int = 0
    peers_probed: int = 0
    latency_ms: float = 0.0

    @property
    def result_count(self) -> int:
        return len(self.results)

    def providers_of(self, resource_id: str) -> list[str]:
        """Every peer offering ``resource_id`` (replication degree)."""
        return [result.provider_id for result in self.results if result.resource_id == resource_id]

    def distinct_resources(self) -> set[str]:
        return {result.resource_id for result in self.results}

    def best(self) -> Optional[SearchResult]:
        """The closest (fewest hops) result, if any."""
        return min(self.results, key=lambda result: result.hops, default=None)


@dataclass
class RetrieveResult:
    """Outcome of downloading one object (plus attachments) from a provider."""

    stored: StoredObject
    provider_id: str
    transfer_bytes: int
    latency_ms: float
    attachments_transferred: int = 0


class PeerNetwork(ABC):
    """Common behaviour of all network organisations."""

    protocol_name = "abstract"

    def __init__(self, *, simulator: Optional[NetworkSimulator] = None,
                 stats: Optional[NetworkStats] = None, seed: int = 0,
                 compile_queries: bool = True, live_membership: bool = False,
                 maintenance_interval_ms: float = 2_000.0,
                 heartbeat_lease_intervals: int = 2,
                 result_caching: bool = False, cache_capacity: int = 128,
                 cache_ttl_ms: float = 2_000.0, shards: int = 1) -> None:
        if maintenance_interval_ms <= 0:
            raise ValueError("the maintenance interval must be positive")
        if heartbeat_lease_intervals < 1:
            raise ValueError("the heartbeat lease must cover at least one interval")
        if cache_capacity < 1:
            raise ValueError("the result cache needs room for at least one entry")
        if cache_ttl_ms <= 0:
            raise ValueError("the result cache TTL must be positive")
        if shards < 1:
            raise ValueError("need at least one shard")
        #: event-queue shard count.  ``shards=1`` (the default) keeps
        #: the single-queue simulator and the existing hot path
        #: untouched; ``shards>1`` partitions the queue across a
        #: :class:`~repro.engine.sharded.ShardedSimulator` whose
        #: conservative time-window barrier reproduces the single-queue
        #: execution bit-for-bit (pinned by the cross-shard contract).
        self.shards = shards
        if simulator is None and shards > 1:
            from repro.engine.sharded import ShardedSimulator
            simulator = ShardedSimulator(seed=seed, shards=shards)
        self.simulator = simulator or NetworkSimulator(seed=seed)
        self.stats = stats or NetworkStats()
        self.peers: dict[str, Peer] = {}
        self.kernel = EventKernel(simulator=self.simulator, peers=self.peers, stats=self.stats)
        self.replicas = ReplicaRegistry()
        #: compile each query once at search start (the fast path); the
        #: flag exists so the contract suite can pin that the compiled
        #: path is result- and message-count-identical to the naive one
        self.compile_queries = compile_queries
        #: when on, peer lifecycle is protocol traffic on the kernel:
        #: joins/leaves/heartbeats/lease renewals cost real messages and
        #: a departed peer's state decays only when repair traffic
        #: notices.  Off (the default) keeps today's instantaneous
        #: ``set_online`` semantics bit-identically.
        self.live_membership = live_membership
        #: period of the recurring maintenance tick (heartbeats, lease
        #: sweeps); keep it larger than the worst link latency so a live
        #: counterpart is never mistaken for a dead one
        self.maintenance_interval_ms = maintenance_interval_ms
        #: a counterpart silent for this many intervals is presumed dead
        self.heartbeat_lease_intervals = heartbeat_lease_intervals
        #: when on, the protocol's natural traffic-concentration points
        #: (server / flooding peers / super-peers / rendezvous edges)
        #: cache finished result sets and answer repeats without paying
        #: the discovery cost again.  Off (the default) is pinned
        #: bit-identical to uncached behaviour by the contract suite.
        self.result_caching = result_caching
        #: entries per cache site (LRU beyond this)
        self.cache_capacity = cache_capacity
        #: cached-entry lifetime; keep it at or below the heartbeat
        #: lease so a stale cached hit never outlives the staleness
        #: window the membership layer reports
        self.cache_ttl_ms = cache_ttl_ms
        #: per-peer result caches (the sites that live *on* a peer:
        #: flooding peers, rendezvous edges).  A departing peer's cache
        #: dies with its RAM in both membership modes.
        self._peer_caches: dict[str, QueryResultCache] = {}
        self._cache_sweep_timer = None
        self._maintenance_timer = None
        self._query_sequence = itertools.count(1)
        self._register_handlers(self.kernel)

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def add_peer(self, peer: Peer) -> Peer:
        """Add ``peer`` to the network and wire it into the overlay.

        With live membership on, the arrival is a protocol event: the
        newcomer's join traffic (discovery pings, registrations, leaf
        attachment) goes through the kernel and costs real messages.
        """
        if peer.peer_id in self.peers:
            raise DuplicatePeerError(f"peer id {peer.peer_id!r} is already in the network")
        self.peers[peer.peer_id] = peer
        peer.online_since = self.simulator.now
        if self.live_membership:
            self._ensure_maintenance()
            self._on_peer_joined_live(peer)
        else:
            self._on_peer_added(peer)
        return peer

    def create_peer(self, peer_id: str) -> Peer:
        """Convenience: create, add and return a new peer."""
        return self.add_peer(Peer(peer_id=peer_id))

    def remove_peer(self, peer_id: str) -> None:
        """Remove a peer entirely (it will not come back).

        Off mode this is the structural API it always was (instant hook
        cleanup).  With live membership on, the removal is an announced
        permanent departure — UNREGISTER/LEAVE/LEAF-DETACH traffic
        through the kernel — and the off-mode hooks' free instant
        mutation never runs.  Either way the peer's open session closes
        into the uptime totals before the object is dropped.
        """
        peer = self._require_peer(peer_id, allow_offline=True)
        if self.live_membership:
            self.depart(peer_id, graceful=True)
        else:
            if peer.online:
                session_ms = self.simulator.now - peer.online_since
                peer.uptime_ms += session_ms
                self.stats.record_uptime(session_ms)
            self._on_peer_removed(peer)
        self.replicas.forget_peer(peer_id)
        self._peer_caches.pop(peer_id, None)
        del self.peers[peer_id]

    def set_online(self, peer_id: str, online: bool) -> None:
        """Toggle a peer's availability (used by the population model).

        Uptime accounting happens in both modes: each offline
        transition closes the current session and accumulates it on
        ``Peer.uptime_ms`` and the network stats.  Protocol reaction
        differs: with live membership off the legacy hooks mutate
        protocol state instantly and for free; with it on, only
        physically-observable effects happen here (a departed node's
        own RAM dies with it) and everything else — re-homing,
        re-registration, stale-record cleanup — is later protocol
        traffic.
        """
        peer = self._require_peer(peer_id, allow_offline=True)
        if peer.online == online:
            return
        now = self.simulator.now
        if online:
            peer.online = True
            peer.online_since = now
            if self.live_membership:
                self._on_peer_joined_live(peer)
            else:
                self._on_peer_returned(peer)
        else:
            session_ms = now - peer.online_since
            peer.uptime_ms += session_ms
            self.stats.record_uptime(session_ms)
            peer.last_departed_ms = now
            peer.online = False
            # The departing peer's own result cache lives in its RAM and
            # dies with it (both membership modes; a no-op when caching
            # is off because the dict stays empty).
            self._peer_caches.pop(peer.peer_id, None)
            if self.live_membership:
                self._on_peer_left_live(peer)
            else:
                self._on_peer_departed(peer)

    def depart(self, peer_id: str, *, graceful: bool = False) -> None:
        """Take a peer offline permanently (it is never rescheduled).

        With live membership on and ``graceful`` set, the peer first
        announces its departure (UNREGISTER / LEAVE / LEAF-DETACH
        traffic through the kernel) so the network cleans up without a
        staleness window; an ungraceful permanent departure leaves
        stale state behind exactly like a crash.
        """
        peer = self._require_peer(peer_id, allow_offline=True)
        if not peer.online:
            return
        if self.live_membership and graceful:
            self._announce_departure_live(peer)
        self.set_online(peer_id, False)

    # ------------------------------------------------------------------
    # Live membership
    # ------------------------------------------------------------------
    def go_live(self) -> None:
        """Switch to live membership from now on (idempotent).

        Typically called once the initial population is built: the
        bootstrap structure (overlay, elections, registrations) stands,
        freshness stamps are initialized to the current virtual time,
        and from here on every lifecycle transition is protocol traffic
        and maintenance runs on recurring kernel timers.
        """
        self.live_membership = True
        self._stamp_freshness(self.simulator.now)
        self._ensure_maintenance()

    @property
    def heartbeat_lease_ms(self) -> float:
        """How long a silent counterpart stays trusted."""
        return self.maintenance_interval_ms * self.heartbeat_lease_intervals

    def _ensure_maintenance(self) -> None:
        # Re-arm after kernel.cancel_timers() too, so going live again
        # after a paused run actually resumes heartbeats and sweeps.
        if self._maintenance_timer is None or self._maintenance_timer.cancelled:
            # detlint: ignore[KERN001] -- network-wide tick: one round visits
            # every peer/site, so it has no single home shard; it runs on the
            # sharded simulator's control queue by design.
            self._maintenance_timer = self.kernel.every(
                self.maintenance_interval_ms, self._maintenance_tick)

    def _maintenance_tick(self) -> None:
        self._on_maintenance_tick(self.simulator.now)

    def _note_staleness(self, provider_id: str, now: float) -> None:
        """Record that stale state of a departed peer was just purged."""
        peer = self.peers.get(provider_id)
        if peer is not None and not peer.online and peer.last_departed_ms >= 0:
            self.stats.record_staleness(now - peer.last_departed_ms)

    def snapshot_uptime(self) -> float:
        """Fold every open session into the uptime totals and return
        ``stats.uptime_ms_total``.

        Sessions normally close (and count) only at an offline
        transition, so a measurement taken mid-run would otherwise
        *undercount* the steadiest peers — the ones that never went
        down.  Call this at a measurement boundary; session clocks
        restart at the current virtual time.
        """
        now = self.simulator.now
        for peer in self.peers.values():
            if peer.online:
                session_ms = now - peer.online_since
                peer.uptime_ms += session_ms
                self.stats.record_uptime(session_ms)
                peer.online_since = now
        return self.stats.uptime_ms_total

    def online_peers(self) -> list[Peer]:
        return [peer for peer in self.peers.values() if peer.online]

    def peer(self, peer_id: str) -> Peer:
        return self._require_peer(peer_id, allow_offline=True)

    def _require_peer(self, peer_id: str, *, allow_offline: bool = False) -> Peer:
        peer = self.peers.get(peer_id)
        if peer is None:
            raise UnknownPeerError(f"unknown peer {peer_id!r}")
        if not peer.online and not allow_offline:
            raise PeerOfflineError(f"peer {peer_id!r} is offline")
        return peer

    # ------------------------------------------------------------------
    # The three primitives (create / search / retrieve)
    # ------------------------------------------------------------------
    @abstractmethod
    def publish(self, peer_id: str, community_id: str, resource_id: str,
                metadata: dict[str, list[str]], *, title: str = "") -> None:
        """Announce a locally stored object to the network."""

    @abstractmethod
    def start_search(self, origin_id: str, query: Query, *, max_results: int = 100,
                     **kwargs) -> QueryContext:
        """Inject a query into the event kernel and return its context.

        Implementations validate the origin (raising synchronously for
        unknown or offline peers), answer from the origin's local index,
        and send the protocol's opening messages.  The returned context
        completes once no message of the query remains in flight.
        """

    def search(self, origin_id: str, query: Query, *, max_results: int = 100,
               **kwargs) -> SearchResponse:
        """Search the network on behalf of ``origin_id``.

        This is the synchronous convenience wrapper: it submits the
        query, drains the event queue until the query quiesces (other
        pending events — churn, maintenance — run as their times come
        up), and returns the finished response.  Batched concurrent
        submission goes through :class:`~repro.engine.driver.QueryDriver`.
        """
        context = self.start_search(origin_id, query, max_results=max_results, **kwargs)
        self.kernel.run_until_complete([context])
        return self.finish_search(context)

    def finish_search(self, context: QueryContext) -> SearchResponse:
        """Turn a completed context into a response and record its cost."""
        response = SearchResponse(
            query=context.query,
            results=list(context.results),
            messages_sent=context.messages_sent,
            bytes_sent=context.bytes_sent,
            peers_probed=context.peers_probed,
            latency_ms=context.latency_ms,
        )
        if not context.finalized:
            context.finalized = True
            if self.result_caching and not context.starved \
                    and not context.extra.get("cache_hit") \
                    and not context.extra.get("remote_cache_served"):
                # The finished result set fills this protocol's cache
                # site.  Responses already served (wholly or partly)
                # from a cache are not re-cached: refreshing the entry
                # would silently extend its TTL past the fill time.
                self._cache_store(context, response)
            self.stats.record_query(QueryRecord(
                query_id=context.extra.get("query_id")
                or f"{self.protocol_name}-{self.next_query_number()}",
                origin=context.origin_id,
                community_id=context.query.community_id,
                results=len(context.results),
                messages=context.messages_sent,
                bytes=context.bytes_sent,
                peers_probed=context.peers_probed,
                latency_ms=context.latency_ms,
                hops_to_first_result=context.first_hit_hops,
            ))
        return response

    def next_query_number(self) -> int:
        """A per-network monotonic number for fallback query ids.

        Unlike ``len(self.stats.queries)``, this stays unique while a
        concurrent batch is in flight (records are only appended at
        finish time, submissions happen earlier).
        """
        return next(self._query_sequence)

    def compile(self, query: Query) -> Optional[CompiledQuery]:
        """The query's compiled plan, or ``None`` when compilation is off."""
        return compile_query(query) if self.compile_queries else None

    def wire_form(self, query: Query, plan: Optional[CompiledQuery]) -> tuple[str, int]:
        """The query's serialized wire form and its byte length.

        With a plan both are computed once per search and shared by
        every hop's QUERY message; without one they are recomputed here
        (the naive path the contract suite compares against).
        """
        if plan is not None:
            return plan.wire_xml, plan.wire_bytes
        xml = query.to_xml_text()
        return xml, len(xml.encode("utf-8"))

    def new_context(self, origin_id: str, query: Query, *, max_results: int,
                    query_id: str = "",
                    plan: Optional[CompiledQuery] = None) -> QueryContext:
        """A fresh context stamped with the current virtual time.

        The query is compiled here, once per search — every protocol
        handler that evaluates it downstream reuses ``context.plan``.
        Callers that compiled earlier (to build the opening message)
        pass their plan in to avoid compiling twice.
        """
        context = QueryContext(
            query=query,
            origin_id=origin_id,
            max_results=max_results,
            started_at=self.simulator.now,
            plan=plan if plan is not None else self.compile(query),
        )
        if query_id:
            context.extra["query_id"] = query_id
        if self.result_caching:
            self._ensure_cache_sweep()
        return context

    def start_retrieve(self, requester_id: str, provider_id: str, resource_id: str,
                       *, bandwidth_kbps: float = 512.0) -> RetrieveContext:
        """Inject a download into the event kernel and return its context.

        The DOWNLOAD-REQUEST is scheduled like any other message; the
        provider answers at delivery time with a DOWNLOAD-RESPONSE plus
        one transfer event per attachment, and the object replicates
        into the requester's repository when the response *arrives*.
        The context quiesces by reference counting — the shared clock is
        never mutated, so downloads compose deterministically with any
        queries in flight.
        """
        self._require_peer(requester_id)
        self._require_peer(provider_id)
        if bandwidth_kbps <= 0:
            raise ValueError("bandwidth must be positive")
        context = RetrieveContext(
            requester_id=requester_id,
            provider_id=provider_id,
            resource_id=resource_id,
            bandwidth_kbps=bandwidth_kbps,
            started_at=self.simulator.now,
        )
        request = download_request(requester_id, provider_id, resource_id)
        self.kernel.send(request, context=context)
        return context

    def retrieve(self, requester_id: str, provider_id: str, resource_id: str,
                 *, bandwidth_kbps: float = 512.0) -> RetrieveResult:
        """Download the full object (and attachments) from ``provider_id``.

        The object is replicated into the requester's repository, which
        is how popular objects gain availability (paper §II).  This is
        the synchronous convenience wrapper over
        :meth:`start_retrieve` / :meth:`finish_retrieve`; batched mixed
        workloads go through :class:`~repro.engine.driver.QueryDriver`.
        """
        context = self.start_retrieve(requester_id, provider_id, resource_id,
                                      bandwidth_kbps=bandwidth_kbps)
        self.kernel.run_until_complete([context])
        return self.finish_retrieve(context)

    def finish_retrieve(self, context: RetrieveContext) -> RetrieveResult:
        """Turn a completed retrieve context into a result, or raise.

        Raises the failure recorded during the exchange (e.g. the
        provider had no such object) or :class:`TransferError` when the
        transfer never completed (provider churned offline mid-request,
        requester churned before the response arrived, starvation).
        """
        if not context.finalized:
            context.finalized = True
            if context.succeeded:
                self.stats.record_download(context.transfer_bytes, DownloadRecord(
                    resource_id=context.resource_id,
                    requester=context.requester_id,
                    provider=context.provider_id,
                    bytes=context.transfer_bytes,
                    latency_ms=context.latency_ms,
                    attachments=context.attachments_transferred,
                ))
        if context.error is not None:
            raise context.error
        if context.stored is None:
            raise TransferError(
                f"download of {context.resource_id!r} from {context.provider_id!r} "
                f"did not complete (dropped in flight)"
            )
        return RetrieveResult(
            stored=context.stored,
            provider_id=context.provider_id,
            transfer_bytes=context.transfer_bytes,
            latency_ms=context.latency_ms,
            attachments_transferred=context.attachments_transferred,
        )

    def locate_provider(self, resource_id: str, *, exclude: Optional[str] = None) -> Optional[str]:
        """An online peer currently holding ``resource_id``, or ``None``.

        Deterministic: originals are preferred over replicas, ties
        break by peer id.  Used by the mixed-workload driver to resolve
        a download target at submission time, so downloads follow the
        replica set as it grows mid-run.
        """
        for holder in self.replicas.holders(resource_id):
            if holder == exclude:
                continue
            peer = self.peers.get(holder)
            if peer is not None and peer.online \
                    and peer.repository.documents.contains(resource_id):
                return holder
        return None

    def replication_degree(self, resource_id: str, *, online_only: bool = False) -> int:
        """How many peers hold a copy of ``resource_id``."""
        holders = self.replicas.holders(resource_id)
        if not online_only:
            return len(holders)
        return sum(
            1 for holder in holders
            if holder in self.peers and self.peers[holder].online
        )

    # ------------------------------------------------------------------
    # Query-result caching (the ``result_caching`` knob)
    # ------------------------------------------------------------------
    def _peer_cache(self, peer_id: str, *, create: bool = True) -> Optional[QueryResultCache]:
        """The result cache living on ``peer_id`` (flooding peers and
        rendezvous edges cache on the peer itself)."""
        cache = self._peer_caches.get(peer_id)
        if cache is None and create:
            peer = self.peers.get(peer_id)
            if peer is None or not peer.online:
                return None
            cache = QueryResultCache(capacity=self.cache_capacity, ttl_ms=self.cache_ttl_ms)
            self._peer_caches[peer_id] = cache
        return cache

    def _context_cache_key(self, context: QueryContext) -> tuple:
        """The context's canonical cache key, computed once per search.

        Keys include ``max_results`` because cached entries hold the
        truncated result set as answered for that room.  With query
        compilation off the plan is compiled here for keying only —
        evaluation still follows the naive path.
        """
        key = context.extra.get("cache_key")
        if key is None:
            plan = context.plan if context.plan is not None else compile_query(context.query)
            # "cache_scope" carries whatever else bounds the search's
            # coverage (gnutella's flood TTL): a shallow search's sparse
            # result set must never answer a deeper repeat.
            key = (plan.cache_key, context.max_results, context.extra.get("cache_scope"))
            context.extra["cache_key"] = key
        return key

    def _promised_results(self, context: QueryContext) -> set[tuple[str, str]]:
        """The ``(provider, resource)`` identities already promised to
        this query — arrived, claimed in flight, or held locally by the
        origin (the lazy seed).  Every caching-mode generation site
        filters against this set and registers what it claims, so no
        identity is ever promised twice."""
        seen = context.extra.get("seen_results")
        if seen is None:
            seen = {(result.provider_id, result.resource_id)
                    for result in context.results}
            context.extra["seen_results"] = seen
        return seen

    def _count_offline_providers(self, results) -> int:
        """How many of ``results`` name a currently-unreachable provider
        (the stale answers a cached serving can contain)."""
        peers = self.peers
        return sum(
            1 for result in results
            if (peer := peers.get(result.provider_id)) is None or not peer.online
        )

    def _serve_cached_locally(self, context: QueryContext, entry: CacheEntry) -> None:
        """Answer the search from a cache co-located with the origin:
        results append directly, no message is sent, and the query
        quiesces with zero latency — the cache's entire point."""
        seen = self._promised_results(context)
        served = []
        for result in entry.results:
            if len(context.results) >= context.max_results:
                break
            identity = (result.provider_id, result.resource_id)
            if identity in seen:
                continue
            seen.add(identity)
            context.add_result(result)
            served.append(result)
        context.extra["cache_hit"] = True
        self.stats.record_cache_hit(stale_results=self._count_offline_providers(served))

    def _send_cached_hit(self, sender_id: str, context: QueryContext, cached: CacheEntry,
                         *, message_id: str, copies: int = 1,
                         reply_when_empty: bool = False) -> None:
        """Serve a cached result set as one QUERY-HIT back to the origin.

        The shared serving path of every remote cache site (the index
        server, a flooding path peer, an entry super-peer): slice to
        the context's room, account the hit (counting results whose
        provider has since departed as stale), claim the room and send
        the hit with the elapsed forward-path latency.  An empty served
        set sends nothing unless ``reply_when_empty`` — the centralized
        server always answers, a flood peer stays silent.

        Cached results already promised to the origin — its own local
        answers, an earlier serving, a direct hit claimed in flight —
        are filtered *before* the room is claimed, and the served ones
        are registered in turn: claiming room for a result that never
        lands (or lands twice) would starve other answerers below
        ``max_results``."""
        seen = self._promised_results(context)
        fresh = [result for result in cached.results
                 if (result.provider_id, result.resource_id) not in seen]
        served = fresh[: context.room()]
        self.stats.record_cache_hit(stale_results=self._count_offline_providers(served))
        context.extra["remote_cache_served"] = True
        if not served and not reply_when_empty:
            return
        seen.update((result.provider_id, result.resource_id) for result in served)
        context.claim(len(served))
        metadata_bytes = (cached.metadata_bytes if len(served) == len(cached.results)
                          else sum(result.metadata_bytes() for result in served))
        hit = query_hit_message(sender_id, context.origin_id, result_count=len(served),
                                metadata_bytes=metadata_bytes, message_id=message_id)
        hit.carried_results = tuple(served)
        self.kernel.send(hit, context=context, copies=copies,
                         latency_ms=self.simulator.now - context.started_at)

    def _store_response_at(self, cache: Optional[QueryResultCache], context: QueryContext,
                           response: SearchResponse, *,
                           lease_ms: Optional[float] = None) -> None:
        """Fill ``cache`` with a finished response (the shared body of
        the per-protocol ``_cache_store`` hooks)."""
        if cache is None:
            return
        results = tuple(response.results)
        metadata_bytes = sum(result.metadata_bytes() for result in results)
        cache.put(self._context_cache_key(context), results, metadata_bytes,
                  self.simulator.now, lease_ms=lease_ms)

    def _cache_store(self, context: QueryContext, response: SearchResponse) -> None:
        """Subclass hook: store a finished response at this protocol's
        cache site (the base class caches nowhere)."""

    def _iter_caches(self):
        """Every live cache site (subclasses add non-peer sites)."""
        yield from self._peer_caches.values()

    def _ensure_cache_sweep(self) -> None:
        # Expired entries are also rejected lazily at lookup; the
        # recurring sweep (one TTL period) just bounds memory and keeps
        # the expiration counters honest.
        if self._cache_sweep_timer is None or self._cache_sweep_timer.cancelled:
            # detlint: ignore[KERN001] -- sweeps every cache site in one pass
            # (peer caches plus subclass sites), so it is control-plane work
            # with no single home shard.
            self._cache_sweep_timer = self.kernel.every(self.cache_ttl_ms, self._cache_sweep)

    def _cache_sweep(self) -> None:
        now = self.simulator.now
        for cache in self._iter_caches():
            cache.sweep(now)

    # ------------------------------------------------------------------
    # Download message handlers (shared by every protocol)
    # ------------------------------------------------------------------
    def _on_download_request(self, peer: Optional[Peer], message: Message,
                             context) -> None:
        """The provider serves the object: a response event for the
        document plus one transfer event per attachment, each arriving
        after its cumulative transmission time."""
        if peer is None or not isinstance(context, RetrieveContext):
            return
        try:
            stored = peer.repository.retrieve(message.resource_id)
        except ObjectNotFoundError as error:
            context.error = error
            return
        payload = len(stored.to_xml_text().encode("utf-8"))
        latency = self.simulator.transfer_time(peer.peer_id, context.requester_id, payload,
                                               bandwidth_kbps=context.bandwidth_kbps)
        response = download_response(peer.peer_id, context.requester_id, message.resource_id,
                                     payload_bytes=payload, message_id=message.message_id,
                                     payload_object=stored)
        self.kernel.send(response, context=context, latency_ms=latency)
        for uri in stored.metadata.get("__attachments__", []):
            if not peer.repository.attachments.has(uri):
                continue
            attachment = peer.repository.attachments.serve(uri)
            latency += self.simulator.transfer_time(peer.peer_id, context.requester_id,
                                                    attachment.size_bytes,
                                                    bandwidth_kbps=context.bandwidth_kbps)
            transfer = attachment_transfer(peer.peer_id, context.requester_id,
                                           message.resource_id, uri=uri,
                                           size_bytes=attachment.size_bytes,
                                           payload_object=attachment)
            self.kernel.send(transfer, context=context, latency_ms=latency)

    def _on_download_response(self, peer: Optional[Peer], message: Message,
                              context) -> None:
        """The requester receives the document (replicating it and
        re-announcing through this protocol's own publish path) or one
        attachment.  A requester that churned offline never gets here —
        the kernel dropped the delivery."""
        if peer is None or not isinstance(context, RetrieveContext):
            return
        if message.attachment_uri:
            attachment = message.payload_object
            if attachment is not None:
                peer.repository.attachments.receive(attachment)
                context.attachments_transferred += 1
                context.transfer_bytes += attachment.size_bytes
            return
        stored = message.payload_object
        if stored is None:
            return
        context.stored = stored
        context.transfer_bytes += message.payload_bytes
        replica = peer.repository.publish(
            stored.community_id, stored.document, dict(stored.metadata), title=stored.title
        )
        self.replicas.note_replica(replica.resource_id, peer.peer_id,
                                   at_ms=self.simulator.now)
        context.replicated = True
        # The new replica is announced so later searches can find it here.
        self.publish(peer.peer_id, stored.community_id, replica.resource_id,
                     dict(stored.metadata), title=stored.title)

    def _on_query_hit(self, peer: Optional[Peer], message: Message,
                      context) -> None:
        """Results ride the QUERY-HIT and count only on arrival at an
        online origin: if the origin churned offline while the hit was
        in flight, the kernel dropped the delivery and the promised
        results never existed."""
        if peer is None or not isinstance(context, QueryContext):
            return
        # With caching on, duplicates cannot arrive: every generation
        # site — a cached serving or a direct answerer — filters and
        # registers against the query's promised-identities set at
        # claim time (see ``_promised_results``), so each
        # (provider, resource) is claimed and sent at most once.
        for result in message.carried_results:
            if len(context.results) >= context.max_results:
                break
            context.add_result(result)

    # ------------------------------------------------------------------
    # Hooks for subclasses
    # ------------------------------------------------------------------
    def _register_handlers(self, kernel: EventKernel) -> None:
        """Register the shared handlers; subclasses extend via super()."""
        kernel.register(MessageType.DOWNLOAD_REQUEST, self._on_download_request)
        kernel.register(MessageType.DOWNLOAD_RESPONSE, self._on_download_response)
        kernel.register(MessageType.QUERY_HIT, self._on_query_hit)

    def _on_peer_added(self, peer: Peer) -> None:
        """Subclass hook: wire a new peer into the overlay."""

    def _on_peer_removed(self, peer: Peer) -> None:
        """Subclass hook: unwire a removed peer."""

    def _on_peer_departed(self, peer: Peer) -> None:
        """Subclass hook: a peer went offline (churn)."""

    def _on_peer_returned(self, peer: Peer) -> None:
        """Subclass hook: a peer came back online (churn)."""

    # ------------------------------------------------------------------
    # Live-membership hooks (protocol traffic instead of free mutation)
    # ------------------------------------------------------------------
    def _on_peer_joined_live(self, peer: Peer) -> None:
        """Subclass hook: a peer arrived or returned; emit join traffic."""

    def _on_peer_left_live(self, peer: Peer) -> None:
        """Subclass hook: a peer crashed/departed.  Only physically
        observable effects belong here (state held *on* the departed
        node dies with it); everything held *about* it elsewhere must
        persist until repair traffic notices."""

    def _announce_departure_live(self, peer: Peer) -> None:
        """Subclass hook: a graceful goodbye (UNREGISTER/LEAVE traffic)."""

    def _on_maintenance_tick(self, now: float) -> None:
        """Subclass hook: one recurring maintenance round (heartbeats,
        lease renewals, expiry sweeps).  Runs as a kernel event."""

    def _stamp_freshness(self, now: float) -> None:
        """Subclass hook: initialize heartbeat/lease stamps at go-live."""

    # ------------------------------------------------------------------
    def _account(self, message: Message) -> None:
        """Record one message in the statistics."""
        self.stats.record_message(message)

    def describe(self) -> str:
        online = len(self.online_peers())
        return f"{self.protocol_name} network: {online}/{len(self.peers)} peers online"
