"""The abstract peer-network interface.

The paper's future-work section proposes modelling "the peer-to-peer
layer as providing a generic interface with primitives for create,
search and retrieve".  :class:`PeerNetwork` is exactly that interface;
the three protocol adapters implement it, and the U-P2P core is written
against it only — which is the protocol-independence property the
experiments test.
"""

from __future__ import annotations

import itertools
import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Iterable, Optional, Union

from repro.engine.kernel import EventKernel, ExchangeContext, QueryContext, RetrieveContext
from repro.network.errors import (
    DuplicatePeerError,
    PeerOfflineError,
    TransferError,
    UnknownPeerError,
)
from repro.network.faults import FaultModel, FaultPlan, build_fault_model
from repro.network.messages import (
    Message,
    MessageType,
    attachment_transfer,
    download_chunk,
    download_request,
    download_response,
    query_hit_message,
)
from repro.network.peers import Peer
from repro.network.simulator import NetworkSimulator
from repro.network.stats import DownloadRecord, NetworkStats, QueryRecord
from repro.storage.cache import CacheEntry, QueryResultCache
from repro.storage.document_store import StoredObject
from repro.storage.errors import ObjectNotFoundError
from repro.storage.plan import CompiledQuery, compile_query
from repro.storage.query import Query
from repro.storage.replicas import ReplicaRegistry


@dataclass(frozen=True)
class SearchResult:
    """One hit returned by a network search.

    The paper specifies that "results will be returned from the network
    and will consist of full meta-data for each search result", so the
    result carries the provider, the resource id and the searchable
    metadata (not the full object — that is what retrieve is for).
    """

    provider_id: str
    resource_id: str
    community_id: str
    title: str
    metadata: dict[str, tuple[str, ...]] = field(default_factory=dict)
    hops: int = 0

    @classmethod
    def from_stored(cls, provider_id: str, stored: StoredObject, *, hops: int = 0) -> "SearchResult":
        # Zero-copy: the stored object's tuple-valued metadata view is
        # built once and shared by every result generated for it.
        return cls(
            provider_id=provider_id,
            resource_id=stored.resource_id,
            community_id=stored.community_id,
            title=stored.title,
            metadata=stored.metadata_view(),
            hops=hops,
        )

    def metadata_bytes(self) -> int:
        """Approximate wire size of the carried metadata."""
        return sum(
            len(path) + sum(len(value) for value in values)
            for path, values in self.metadata.items()
        )


@dataclass
class SearchResponse:
    """Everything a search produced, including its cost."""

    query: Query
    results: list[SearchResult] = field(default_factory=list)
    messages_sent: int = 0
    bytes_sent: int = 0
    peers_probed: int = 0
    latency_ms: float = 0.0

    @property
    def result_count(self) -> int:
        return len(self.results)

    def providers_of(self, resource_id: str) -> list[str]:
        """Every peer offering ``resource_id`` (replication degree)."""
        return [result.provider_id for result in self.results if result.resource_id == resource_id]

    def distinct_resources(self) -> set[str]:
        return {result.resource_id for result in self.results}

    def best(self) -> Optional[SearchResult]:
        """The closest (fewest hops) result, if any."""
        return min(self.results, key=lambda result: result.hops, default=None)


@dataclass
class RetrieveResult:
    """Outcome of downloading one object (plus attachments) from a provider."""

    stored: StoredObject
    provider_id: str
    transfer_bytes: int
    latency_ms: float
    attachments_transferred: int = 0


@dataclass
class _PendingAck:
    """One reliably-sent message awaiting its ACK (see ``send_reliable``)."""

    message: Message
    context: Optional[ExchangeContext]
    attempt: int = 0


#: distinguishes "flat kwarg not passed" from an explicit ``None`` for
#: the knobs whose meaningful default *is* ``None`` (download_chunk_bytes)
_UNSET: object = object()


class PeerNetwork(ABC):
    """Common behaviour of all network organisations.

    Configuration is accepted in two interchangeable spellings: the
    historical flat kwargs (``result_caching=True, cache_ttl_ms=400.0``)
    and grouped config objects (``cache=CacheConfig(enabled=True,
    ttl_ms=400.0)`` — see :mod:`repro.workloads.config`).  Both
    normalize into the same flat attributes; passing a group together
    with an explicit flat knob of that group raises ``ValueError``.
    """

    protocol_name = "abstract"

    def __init__(self, *, simulator: Optional[NetworkSimulator] = None,
                 stats: Optional[NetworkStats] = None, seed: int = 0,
                 compile_queries: bool = True,
                 live_membership: Optional[bool] = None,
                 maintenance_interval_ms: Optional[float] = None,
                 heartbeat_lease_intervals: Optional[int] = None,
                 result_caching: Optional[bool] = None,
                 cache_capacity: Optional[int] = None,
                 cache_ttl_ms: Optional[float] = None, shards: int = 1,
                 parallel: bool = False,
                 faults: Optional[FaultPlan] = None,
                 reliable_delivery: Optional[bool] = None,
                 retry_timeout_ms: Optional[float] = None,
                 retry_max_attempts: Optional[int] = None,
                 download_chunk_bytes: object = _UNSET,
                 download_stall_timeout_ms: Optional[float] = None,
                 informed_routing: Optional[bool] = None,
                 routing_filter_bits: Optional[int] = None,
                 routing_hash_count: Optional[int] = None,
                 routing_depth: Optional[int] = None,
                 cache: Optional[object] = None,
                 membership: Optional[object] = None,
                 reliability: Optional[object] = None,
                 routing: Optional[object] = None) -> None:
        # Imported lazily: repro.workloads eagerly imports the scenario
        # builder, which imports this module — at call time the cycle
        # has already resolved.
        from repro.workloads.config import (
            CacheConfig, MembershipConfig, ReliabilityConfig, RoutingConfig,
            resolve_group)

        def explicit(**pairs):
            return {name: value for name, value in pairs.items() if value is not None}

        cache = resolve_group(cache, "cache", CacheConfig, explicit(
            enabled=result_caching, capacity=cache_capacity, ttl_ms=cache_ttl_ms))
        membership = resolve_group(membership, "membership", MembershipConfig, explicit(
            live=live_membership, maintenance_interval_ms=maintenance_interval_ms,
            heartbeat_lease_intervals=heartbeat_lease_intervals))
        reliability_flat = explicit(
            reliable_delivery=reliable_delivery, retry_timeout_ms=retry_timeout_ms,
            retry_max_attempts=retry_max_attempts,
            download_stall_timeout_ms=download_stall_timeout_ms)
        if download_chunk_bytes is not _UNSET:
            reliability_flat["download_chunk_bytes"] = download_chunk_bytes
        reliability = resolve_group(reliability, "reliability", ReliabilityConfig,
                                    reliability_flat)
        routing = resolve_group(routing, "routing", RoutingConfig, explicit(
            informed=informed_routing, filter_bits=routing_filter_bits,
            hash_count=routing_hash_count, depth=routing_depth))
        if shards < 1:
            raise ValueError("need at least one shard")
        if routing.informed and cache.enabled:
            # Refuse loudly rather than compose unsoundly: a pruned
            # flood changes which path peers complete (and thus cache)
            # a query, so cached repeats would become vantage-dependent
            # and the "informed only saves messages" contract unprovable.
            raise ValueError(
                "informed_routing does not compose with result_caching: "
                "pruning changes which peers fill their path caches; "
                "run the knobs separately")
        #: the canonical grouped spellings (flat attributes below are
        #: derived from these and stay the API downstream code reads)
        self.cache_config = cache
        self.membership_config = membership
        self.reliability_config = reliability
        self.routing_config = routing
        #: event-queue shard count.  ``shards=1`` (the default) keeps
        #: the single-queue simulator and the existing hot path
        #: untouched; ``shards>1`` partitions the queue across a
        #: :class:`~repro.engine.sharded.ShardedSimulator` whose
        #: conservative time-window barrier reproduces the single-queue
        #: execution bit-for-bit (pinned by the cross-shard contract).
        self.shards = shards
        #: process-parallel execution (``engine/parallel.py``): each
        #: worker process hosts its share of the shard heaps; the
        #: in-process ``parallel=False`` default is pinned bit-identical.
        #: Only meaningful inside a worker spawned by
        #: ``run_parallel_scenario`` — the coordinator never builds a
        #: network itself.
        self.parallel = parallel
        if parallel:
            from repro.engine.parallel import (
                WorkerKernel, WorkerSimulator, WorkerStats, current_runtime)
            runtime = current_runtime()
            if runtime is None:
                raise ValueError(
                    "parallel=True requires an active worker runtime; "
                    "drive parallel execution through "
                    "repro.engine.parallel.run_parallel_scenario")
            if simulator is not None or stats is not None:
                raise ValueError(
                    "parallel=True builds its own worker simulator and "
                    "stats; pass neither")
            self.simulator = WorkerSimulator(runtime, seed=seed, shards=shards)
            self.stats = WorkerStats(runtime)
            self.peers: dict[str, Peer] = {}
            self.kernel = WorkerKernel(runtime, simulator=self.simulator,
                                       peers=self.peers, stats=self.stats)
            self.kernel.bind_network(self)
        else:
            if simulator is None and shards > 1:
                from repro.engine.sharded import ShardedSimulator
                simulator = ShardedSimulator(seed=seed, shards=shards)
            self.simulator = simulator or NetworkSimulator(seed=seed)
            self.stats = stats or NetworkStats()
            self.peers = {}
            self.kernel = EventKernel(simulator=self.simulator, peers=self.peers,
                                      stats=self.stats)
        self.replicas = ReplicaRegistry()
        #: compile each query once at search start (the fast path); the
        #: flag exists so the contract suite can pin that the compiled
        #: path is result- and message-count-identical to the naive one
        self.compile_queries = compile_queries
        #: when on, peer lifecycle is protocol traffic on the kernel:
        #: joins/leaves/heartbeats/lease renewals cost real messages and
        #: a departed peer's state decays only when repair traffic
        #: notices.  Off (the default) keeps today's instantaneous
        #: ``set_online`` semantics bit-identically.
        self.live_membership = membership.live
        #: period of the recurring maintenance tick (heartbeats, lease
        #: sweeps); keep it larger than the worst link latency so a live
        #: counterpart is never mistaken for a dead one
        self.maintenance_interval_ms = membership.maintenance_interval_ms
        #: a counterpart silent for this many intervals is presumed dead
        self.heartbeat_lease_intervals = membership.heartbeat_lease_intervals
        #: when on, the protocol's natural traffic-concentration points
        #: (server / flooding peers / super-peers / rendezvous edges)
        #: cache finished result sets and answer repeats without paying
        #: the discovery cost again.  Off (the default) is pinned
        #: bit-identical to uncached behaviour by the contract suite.
        self.result_caching = cache.enabled
        #: entries per cache site (LRU beyond this)
        self.cache_capacity = cache.capacity
        #: cached-entry lifetime; keep it at or below the heartbeat
        #: lease so a stale cached hit never outlives the staleness
        #: window the membership layer reports
        self.cache_ttl_ms = cache.ttl_ms
        #: when on, gnutella's flood consults per-neighbour attenuated
        #: Bloom filters and forwards only where the filter admits the
        #: query, falling back to the blind flood when no neighbour
        #: admits it (``repro.network.routing``).  Off (the default) is
        #: pinned bit-identical to the blind flood; the other
        #: organisations have no flood to prune and ignore the knob.
        self.informed_routing = routing.informed
        #: bits per Bloom-filter level / hashes per key / filter depth
        self.routing_filter_bits = routing.filter_bits
        self.routing_hash_count = routing.hash_count
        self.routing_depth = routing.depth
        #: per-peer result caches (the sites that live *on* a peer:
        #: flooding peers, rendezvous edges).  A departing peer's cache
        #: dies with its RAM in both membership modes.
        self._peer_caches: dict[str, QueryResultCache] = {}
        self._cache_sweep_timer = None
        self._maintenance_timer = None
        self._query_sequence = itertools.count(1)
        #: when on, request/response traffic that semantically needs
        #: delivery (REGISTER / JOIN / AD-RENEW / LEAF-ATTACH,
        #: DOWNLOAD-REQUEST) rides an ACK + capped-exponential-backoff
        #: envelope; gnutella's flood stays best-effort by design.  Off
        #: (the default) is pinned bit-identical by the fault contract.
        self.reliable_delivery = reliability.reliable_delivery
        #: first retransmission fires this long after a reliable send;
        #: each further attempt doubles it, capped at 8x
        self.retry_timeout_ms = reliability.retry_timeout_ms
        #: total attempts (the original send plus retransmissions) per
        #: reliable message, and re-requests per download provider
        self.retry_max_attempts = reliability.retry_max_attempts
        #: ``None`` keeps the legacy single-response download; a byte
        #: count streams downloads as chunks with stall detection and
        #: deterministic failover to the next-ranked replica
        self.download_chunk_bytes = reliability.download_chunk_bytes
        #: a chunked download making no progress for this long is
        #: stalled: re-request the provider, then fail over
        self.download_stall_timeout_ms = reliability.download_stall_timeout_ms
        #: reliably-sent messages awaiting their ACK, keyed by message id
        self._pending_acks: dict[str, _PendingAck] = {}
        self._register_handlers(self.kernel)
        #: deterministic fault injection (``faults=None``, the default,
        #: is pinned bit-identical to the perfect-link substrate)
        self.faults: Optional[FaultModel] = None
        if faults is not None:
            self.install_faults(faults)

    def install_faults(self, plan: FaultPlan) -> None:
        """Arm ``plan`` from the current virtual time onwards.

        Plan times (partition windows, crash instants) are relative to
        this moment.  Scenarios install after bootstrap so structural
        setup stays fault-free and the plan describes the measured
        workload environment; a directly-built network passing
        ``faults=`` to the constructor installs at time zero.
        """
        self.faults = build_fault_model(plan, epoch_ms=self.simulator.now)
        assert self.faults is not None
        self.kernel.faults = self.faults
        for peer_id, at_ms in plan.crashes:
            self.simulator.post(max(0.0, at_ms), self._fault_crash, peer_id)

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def add_peer(self, peer: Peer) -> Peer:
        """Add ``peer`` to the network and wire it into the overlay.

        With live membership on, the arrival is a protocol event: the
        newcomer's join traffic (discovery pings, registrations, leaf
        attachment) goes through the kernel and costs real messages.
        """
        if peer.peer_id in self.peers:
            raise DuplicatePeerError(f"peer id {peer.peer_id!r} is already in the network")
        self.peers[peer.peer_id] = peer
        peer.online_since = self.simulator.now
        if self.live_membership:
            self._ensure_maintenance()
            self._on_peer_joined_live(peer)
        else:
            self._on_peer_added(peer)
        return peer

    def create_peer(self, peer_id: str) -> Peer:
        """Convenience: create, add and return a new peer."""
        return self.add_peer(Peer(peer_id=peer_id))

    def remove_peer(self, peer_id: str) -> None:
        """Remove a peer entirely (it will not come back).

        Off mode this is the structural API it always was (instant hook
        cleanup).  With live membership on, the removal is an announced
        permanent departure — UNREGISTER/LEAVE/LEAF-DETACH traffic
        through the kernel — and the off-mode hooks' free instant
        mutation never runs.  Either way the peer's open session closes
        into the uptime totals before the object is dropped.
        """
        peer = self._require_peer(peer_id, allow_offline=True)
        if self.live_membership:
            self.depart(peer_id, graceful=True)
        else:
            if peer.online:
                session_ms = self.simulator.now - peer.online_since
                peer.uptime_ms += session_ms
                self.stats.record_uptime(session_ms)
            self._on_peer_removed(peer)
        self.replicas.forget_peer(peer_id)
        self._peer_caches.pop(peer_id, None)
        del self.peers[peer_id]

    def set_online(self, peer_id: str, online: bool) -> None:
        """Toggle a peer's availability (used by the population model).

        Uptime accounting happens in both modes: each offline
        transition closes the current session and accumulates it on
        ``Peer.uptime_ms`` and the network stats.  Protocol reaction
        differs: with live membership off the legacy hooks mutate
        protocol state instantly and for free; with it on, only
        physically-observable effects happen here (a departed node's
        own RAM dies with it) and everything else — re-homing,
        re-registration, stale-record cleanup — is later protocol
        traffic.
        """
        peer = self._require_peer(peer_id, allow_offline=True)
        if peer.online == online:
            return
        now = self.simulator.now
        if online:
            peer.online = True
            peer.online_since = now
            if self.live_membership:
                self._on_peer_joined_live(peer)
            else:
                self._on_peer_returned(peer)
        else:
            session_ms = now - peer.online_since
            peer.uptime_ms += session_ms
            self.stats.record_uptime(session_ms)
            peer.last_departed_ms = now
            peer.online = False
            # The departing peer's own result cache lives in its RAM and
            # dies with it (both membership modes; a no-op when caching
            # is off because the dict stays empty).
            self._peer_caches.pop(peer.peer_id, None)
            if self.live_membership:
                self._on_peer_left_live(peer)
            else:
                self._on_peer_departed(peer)

    def depart(self, peer_id: str, *, graceful: bool = False) -> None:
        """Take a peer offline permanently (it is never rescheduled).

        With live membership on and ``graceful`` set, the peer first
        announces its departure (UNREGISTER / LEAVE / LEAF-DETACH
        traffic through the kernel) so the network cleans up without a
        staleness window; an ungraceful permanent departure leaves
        stale state behind exactly like a crash.
        """
        peer = self._require_peer(peer_id, allow_offline=True)
        if not peer.online:
            return
        if self.live_membership and graceful:
            self._announce_departure_live(peer)
        self.set_online(peer_id, False)

    # ------------------------------------------------------------------
    # Live membership
    # ------------------------------------------------------------------
    def go_live(self) -> None:
        """Switch to live membership from now on (idempotent).

        Typically called once the initial population is built: the
        bootstrap structure (overlay, elections, registrations) stands,
        freshness stamps are initialized to the current virtual time,
        and from here on every lifecycle transition is protocol traffic
        and maintenance runs on recurring kernel timers.
        """
        self.live_membership = True
        self._stamp_freshness(self.simulator.now)
        self._ensure_maintenance()

    @property
    def heartbeat_lease_ms(self) -> float:
        """How long a silent counterpart stays trusted."""
        return self.maintenance_interval_ms * self.heartbeat_lease_intervals

    def _ensure_maintenance(self) -> None:
        # Re-arm after kernel.cancel_timers() too, so going live again
        # after a paused run actually resumes heartbeats and sweeps.
        if self._maintenance_timer is None or self._maintenance_timer.cancelled:
            # detlint: ignore[KERN001] -- network-wide tick: one round visits
            # every peer/site, so it has no single home shard; it runs on the
            # sharded simulator's control queue by design.
            self._maintenance_timer = self.kernel.every(
                self.maintenance_interval_ms, self._maintenance_tick)

    def _maintenance_tick(self) -> None:
        self._on_maintenance_tick(self.simulator.now)

    def _note_staleness(self, provider_id: str, now: float) -> None:
        """Record that stale state of a departed peer was just purged."""
        peer = self.peers.get(provider_id)
        if peer is not None and not peer.online and peer.last_departed_ms >= 0:
            self.stats.record_staleness(now - peer.last_departed_ms)

    def snapshot_uptime(self) -> float:
        """Fold every open session into the uptime totals and return
        ``stats.uptime_ms_total``.

        Sessions normally close (and count) only at an offline
        transition, so a measurement taken mid-run would otherwise
        *undercount* the steadiest peers — the ones that never went
        down.  Call this at a measurement boundary; session clocks
        restart at the current virtual time.
        """
        now = self.simulator.now
        for peer in self.peers.values():
            if peer.online:
                session_ms = now - peer.online_since
                peer.uptime_ms += session_ms
                self.stats.record_uptime(session_ms)
                peer.online_since = now
        return self.stats.uptime_ms_total

    def online_peers(self) -> list[Peer]:
        return [peer for peer in self.peers.values() if peer.online]

    def peer(self, peer_id: str) -> Peer:
        return self._require_peer(peer_id, allow_offline=True)

    def _require_peer(self, peer_id: str, *, allow_offline: bool = False) -> Peer:
        peer = self.peers.get(peer_id)
        if peer is None:
            raise UnknownPeerError(f"unknown peer {peer_id!r}")
        if not peer.online and not allow_offline:
            raise PeerOfflineError(f"peer {peer_id!r} is offline")
        return peer

    # ------------------------------------------------------------------
    # The three primitives (create / search / retrieve)
    # ------------------------------------------------------------------
    @abstractmethod
    def publish(self, peer_id: str, community_id: str, resource_id: str,
                metadata: dict[str, list[str]], *, title: str = "") -> None:
        """Announce a locally stored object to the network."""

    @abstractmethod
    def start_search(self, origin_id: str, query: Query, *, max_results: int = 100,
                     **kwargs) -> QueryContext:
        """Inject a query into the event kernel and return its context.

        Implementations validate the origin (raising synchronously for
        unknown or offline peers), answer from the origin's local index,
        and send the protocol's opening messages.  The returned context
        completes once no message of the query remains in flight.
        """

    def search(self, origin_id: str, query: Query, *, max_results: int = 100,
               **kwargs) -> SearchResponse:
        """Search the network on behalf of ``origin_id``.

        This is the synchronous convenience wrapper: it submits the
        query, drains the event queue until the query quiesces (other
        pending events — churn, maintenance — run as their times come
        up), and returns the finished response.  Batched concurrent
        submission goes through :class:`~repro.engine.driver.QueryDriver`.
        """
        context = self.start_search(origin_id, query, max_results=max_results, **kwargs)
        self.kernel.run_until_complete([context])
        return self.finish_search(context)

    def finish_search(self, context: QueryContext) -> SearchResponse:
        """Turn a completed context into a response and record its cost."""
        # Parallel workers canonicalize the context here (counters
        # summed across the fleet, results shipped from the origin's
        # owner); serial execution holds everything already (no-op).
        self.kernel.sync_context(context)
        response = SearchResponse(
            query=context.query,
            results=list(context.results),
            messages_sent=context.messages_sent,
            bytes_sent=context.bytes_sent,
            peers_probed=context.peers_probed,
            latency_ms=context.latency_ms,
        )
        if not context.finalized:
            context.finalized = True
            if self.result_caching and not context.starved \
                    and not context.extra.get("cache_hit") \
                    and not context.extra.get("remote_cache_served"):
                # The finished result set fills this protocol's cache
                # site.  Responses already served (wholly or partly)
                # from a cache are not re-cached: refreshing the entry
                # would silently extend its TTL past the fill time.
                self._cache_store(context, response)
            self.stats.record_query(QueryRecord(
                query_id=context.extra.get("query_id")
                or f"{self.protocol_name}-{self.next_query_number()}",
                origin=context.origin_id,
                community_id=context.query.community_id,
                results=len(context.results),
                messages=context.messages_sent,
                bytes=context.bytes_sent,
                peers_probed=context.peers_probed,
                latency_ms=context.latency_ms,
                hops_to_first_result=context.first_hit_hops,
            ))
        return response

    def next_query_number(self) -> int:
        """A per-network monotonic number for fallback query ids.

        Unlike ``len(self.stats.queries)``, this stays unique while a
        concurrent batch is in flight (records are only appended at
        finish time, submissions happen earlier).
        """
        return next(self._query_sequence)

    def compile(self, query: Query) -> Optional[CompiledQuery]:
        """The query's compiled plan, or ``None`` when compilation is off."""
        return compile_query(query) if self.compile_queries else None

    def wire_form(self, query: Query, plan: Optional[CompiledQuery]) -> tuple[str, int]:
        """The query's serialized wire form and its byte length.

        With a plan both are computed once per search and shared by
        every hop's QUERY message; without one they are recomputed here
        (the naive path the contract suite compares against).
        """
        if plan is not None:
            return plan.wire_xml, plan.wire_bytes
        xml = query.to_xml_text()
        return xml, len(xml.encode("utf-8"))

    def new_context(self, origin_id: str, query: Query, *, max_results: int,
                    query_id: str = "",
                    plan: Optional[CompiledQuery] = None) -> QueryContext:
        """A fresh context stamped with the current virtual time.

        The query is compiled here, once per search — every protocol
        handler that evaluates it downstream reuses ``context.plan``.
        Callers that compiled earlier (to build the opening message)
        pass their plan in to avoid compiling twice.
        """
        context = QueryContext(
            query=query,
            origin_id=origin_id,
            max_results=max_results,
            started_at=self.simulator.now,
            plan=plan if plan is not None else self.compile(query),
        )
        if query_id:
            context.extra["query_id"] = query_id
        if self.result_caching:
            self._ensure_cache_sweep()
        return context

    def start_retrieve(self, requester_id: str, provider_id: str, resource_id: str,
                       *, bandwidth_kbps: float = 512.0) -> RetrieveContext:
        """Inject a download into the event kernel and return its context.

        The DOWNLOAD-REQUEST is scheduled like any other message; the
        provider answers at delivery time with a DOWNLOAD-RESPONSE plus
        one transfer event per attachment, and the object replicates
        into the requester's repository when the response *arrives*.
        The context quiesces by reference counting — the shared clock is
        never mutated, so downloads compose deterministically with any
        queries in flight.
        """
        self._require_peer(requester_id)
        self._require_peer(provider_id)
        if bandwidth_kbps <= 0:
            raise ValueError("bandwidth must be positive")
        context = RetrieveContext(
            requester_id=requester_id,
            provider_id=provider_id,
            resource_id=resource_id,
            bandwidth_kbps=bandwidth_kbps,
            started_at=self.simulator.now,
        )
        request = download_request(requester_id, provider_id, resource_id)
        self.send_reliable(request, context=context)
        if self.download_chunk_bytes is not None:
            # The stall watchdog holds a pending token so a download
            # whose chunks stop arriving stays open long enough to
            # re-request or fail over instead of completing as lost.
            context.pending += 1
            context.watchdog_held = True
            self._arm_download_watchdog(context)
        return context

    def retrieve(self, requester_id: str, provider_id: str, resource_id: str,
                 *, bandwidth_kbps: float = 512.0) -> RetrieveResult:
        """Download the full object (and attachments) from ``provider_id``.

        The object is replicated into the requester's repository, which
        is how popular objects gain availability (paper §II).  This is
        the synchronous convenience wrapper over
        :meth:`start_retrieve` / :meth:`finish_retrieve`; batched mixed
        workloads go through :class:`~repro.engine.driver.QueryDriver`.
        """
        context = self.start_retrieve(requester_id, provider_id, resource_id,
                                      bandwidth_kbps=bandwidth_kbps)
        self.kernel.run_until_complete([context])
        return self.finish_retrieve(context)

    def finish_retrieve(self, context: RetrieveContext) -> RetrieveResult:
        """Turn a completed retrieve context into a result, or raise.

        Raises the failure recorded during the exchange (e.g. the
        provider had no such object) or :class:`TransferError` when the
        transfer never completed (provider churned offline mid-request,
        requester churned before the response arrived, starvation).
        """
        self.kernel.sync_context(context)
        if not context.finalized:
            context.finalized = True
            if context.succeeded:
                self.stats.record_download(context.transfer_bytes, DownloadRecord(
                    resource_id=context.resource_id,
                    requester=context.requester_id,
                    provider=context.provider_id,
                    bytes=context.transfer_bytes,
                    latency_ms=context.latency_ms,
                    attachments=context.attachments_transferred,
                ))
        if context.error is not None:
            raise context.error
        if context.stored is None:
            raise TransferError(
                f"download of {context.resource_id!r} from {context.provider_id!r} "
                f"did not complete (dropped in flight)"
            )
        return RetrieveResult(
            stored=context.stored,
            provider_id=context.provider_id,
            transfer_bytes=context.transfer_bytes,
            latency_ms=context.latency_ms,
            attachments_transferred=context.attachments_transferred,
        )

    def locate_provider(self, resource_id: str, *,
                        exclude: Union[str, Iterable[str], None] = None) -> Optional[str]:
        """An online peer currently holding ``resource_id``, or ``None``.

        Deterministic: originals are preferred over replicas, ties
        break by peer id.  Used by the mixed-workload driver to resolve
        a download target at submission time, and by download failover
        to pick the next-ranked replica — ``exclude`` takes a single
        peer id or a collection (the requester plus every provider that
        already crashed or stalled out of the transfer).
        """
        excluded = frozenset((exclude,)) if isinstance(exclude, str) \
            else frozenset(exclude or ())
        for holder in self.replicas.holders(resource_id, exclude=excluded):
            peer = self.peers.get(holder)
            if peer is not None and peer.online \
                    and peer.repository.documents.contains(resource_id):
                return holder
        return None

    def replication_degree(self, resource_id: str, *, online_only: bool = False) -> int:
        """How many peers hold a copy of ``resource_id``."""
        holders = self.replicas.holders(resource_id)
        if not online_only:
            return len(holders)
        return sum(
            1 for holder in holders
            if holder in self.peers and self.peers[holder].online
        )

    # ------------------------------------------------------------------
    # Query-result caching (the ``result_caching`` knob)
    # ------------------------------------------------------------------
    def _peer_cache(self, peer_id: str, *, create: bool = True) -> Optional[QueryResultCache]:
        """The result cache living on ``peer_id`` (flooding peers and
        rendezvous edges cache on the peer itself)."""
        cache = self._peer_caches.get(peer_id)
        if cache is None and create:
            peer = self.peers.get(peer_id)
            if peer is None or not peer.online:
                return None
            cache = QueryResultCache(capacity=self.cache_capacity, ttl_ms=self.cache_ttl_ms)
            self._peer_caches[peer_id] = cache
        return cache

    def _context_cache_key(self, context: QueryContext) -> tuple:
        """The context's canonical cache key, computed once per search.

        Keys include ``max_results`` because cached entries hold the
        truncated result set as answered for that room.  With query
        compilation off the plan is compiled here for keying only —
        evaluation still follows the naive path.
        """
        key = context.extra.get("cache_key")
        if key is None:
            plan = context.plan if context.plan is not None else compile_query(context.query)
            # "cache_scope" carries whatever else bounds the search's
            # coverage (gnutella's flood TTL): a shallow search's sparse
            # result set must never answer a deeper repeat.
            key = (plan.cache_key, context.max_results, context.extra.get("cache_scope"))
            context.extra["cache_key"] = key
        return key

    def _promised_results(self, context: QueryContext) -> set[tuple[str, str]]:
        """The ``(provider, resource)`` identities already promised to
        this query — arrived, claimed in flight, or held locally by the
        origin (the lazy seed).  Every caching-mode generation site
        filters against this set and registers what it claims, so no
        identity is ever promised twice."""
        seen = context.extra.get("seen_results")
        if seen is None:
            seen = {(result.provider_id, result.resource_id)
                    for result in context.results}
            context.extra["seen_results"] = seen
        return seen

    def _count_offline_providers(self, results) -> int:
        """How many of ``results`` name a currently-unreachable provider
        (the stale answers a cached serving can contain)."""
        peers = self.peers
        return sum(
            1 for result in results
            if (peer := peers.get(result.provider_id)) is None or not peer.online
        )

    def _serve_cached_locally(self, context: QueryContext, entry: CacheEntry) -> None:
        """Answer the search from a cache co-located with the origin:
        results append directly, no message is sent, and the query
        quiesces with zero latency — the cache's entire point."""
        seen = self._promised_results(context)
        served = []
        for result in entry.results:
            if len(context.results) >= context.max_results:
                break
            identity = (result.provider_id, result.resource_id)
            if identity in seen:
                continue
            seen.add(identity)
            context.add_result(result)
            served.append(result)
        self.kernel.note_result_claims(
            context, tuple((result.provider_id, result.resource_id)
                           for result in served))
        context.extra["cache_hit"] = True
        self.stats.record_cache_hit(stale_results=self._count_offline_providers(served))

    def _send_cached_hit(self, sender_id: str, context: QueryContext, cached: CacheEntry,
                         *, message_id: str, copies: int = 1,
                         reply_when_empty: bool = False) -> None:
        """Serve a cached result set as one QUERY-HIT back to the origin.

        The shared serving path of every remote cache site (the index
        server, a flooding path peer, an entry super-peer): slice to
        the context's room, account the hit (counting results whose
        provider has since departed as stale), claim the room and send
        the hit with the elapsed forward-path latency.  An empty served
        set sends nothing unless ``reply_when_empty`` — the centralized
        server always answers, a flood peer stays silent.

        Cached results already promised to the origin — its own local
        answers, an earlier serving, a direct hit claimed in flight —
        are filtered *before* the room is claimed, and the served ones
        are registered in turn: claiming room for a result that never
        lands (or lands twice) would starve other answerers below
        ``max_results``."""
        seen = self._promised_results(context)
        fresh = [result for result in cached.results
                 if (result.provider_id, result.resource_id) not in seen]
        served = fresh[: context.room()]
        self.stats.record_cache_hit(stale_results=self._count_offline_providers(served))
        context.extra["remote_cache_served"] = True
        if not served and not reply_when_empty:
            return
        seen.update((result.provider_id, result.resource_id) for result in served)
        self.kernel.note_result_claims(
            context, tuple((result.provider_id, result.resource_id)
                           for result in served))
        context.claim(len(served))
        metadata_bytes = (cached.metadata_bytes if len(served) == len(cached.results)
                          else sum(result.metadata_bytes() for result in served))
        hit = query_hit_message(sender_id, context.origin_id, result_count=len(served),
                                metadata_bytes=metadata_bytes, message_id=message_id)
        hit.carried_results = tuple(served)
        self.kernel.send(hit, context=context, copies=copies,
                         latency_ms=self.simulator.now - context.started_at)

    def _store_response_at(self, cache: Optional[QueryResultCache], context: QueryContext,
                           response: SearchResponse, *,
                           lease_ms: Optional[float] = None) -> None:
        """Fill ``cache`` with a finished response (the shared body of
        the per-protocol ``_cache_store`` hooks)."""
        if cache is None:
            return
        results = tuple(response.results)
        metadata_bytes = sum(result.metadata_bytes() for result in results)
        cache.put(self._context_cache_key(context), results, metadata_bytes,
                  self.simulator.now, lease_ms=lease_ms)

    def _cache_store(self, context: QueryContext, response: SearchResponse) -> None:
        """Subclass hook: store a finished response at this protocol's
        cache site (the base class caches nowhere)."""

    def _parallel_serve_probe(self, message: Message,
                              context: Optional[QueryContext],
                              at_ms: float) -> bool:
        """Would delivering this queued QUERY serve from a shard-plane
        cache site?  (Process-parallel exactness hook — see
        ``engine/parallel.py``.)

        A cached serving filters against the context's promised-result
        registry, which is instantaneous-global in a serial run but
        replicates one barrier late across workers; the parallel runner
        therefore isolates each predicted serving in its own window so
        every prior claim has replicated before it executes.  The
        prediction must never miss a real serving (caches only *lose*
        validity mid-window — puts happen at replicated finish paths),
        while over-predicting merely truncates a window, which is
        always safe.  The base class has no shard-plane cache sites."""
        return False

    def _iter_caches(self):
        """Every live cache site (subclasses add non-peer sites)."""
        yield from self._peer_caches.values()

    def _ensure_cache_sweep(self) -> None:
        # Expired entries are also rejected lazily at lookup; the
        # recurring sweep (one TTL period) just bounds memory and keeps
        # the expiration counters honest.
        if self._cache_sweep_timer is None or self._cache_sweep_timer.cancelled:
            # detlint: ignore[KERN001] -- sweeps every cache site in one pass
            # (peer caches plus subclass sites), so it is control-plane work
            # with no single home shard.
            self._cache_sweep_timer = self.kernel.every(self.cache_ttl_ms, self._cache_sweep)

    def _cache_sweep(self) -> None:
        now = self.simulator.now
        for cache in self._iter_caches():
            cache.sweep(now)

    # ------------------------------------------------------------------
    # Reliable delivery (ACK + capped exponential backoff + timeout)
    # ------------------------------------------------------------------
    def send_reliable(self, message: Message, *,
                      context: Optional[ExchangeContext] = None) -> None:
        """Send ``message``, retransmitting until acknowledged.

        With ``reliable_delivery`` off this is a plain ``kernel.send``
        (the pinned default).  On, the message is marked for
        acknowledgement, parked in the pending-ACK table and
        retransmitted on a capped exponential backoff until its ACK
        arrives or ``retry_max_attempts`` sends are exhausted.  Only
        traffic that semantically needs delivery goes through here —
        REGISTER / JOIN / AD-RENEW / LEAF-ATTACH and DOWNLOAD-REQUEST;
        floods and heartbeats stay best-effort by design.
        """
        if not self.reliable_delivery:
            self.kernel.send(message, context=context)
            return
        message.ack_to = message.sender
        entry = _PendingAck(message=message, context=context)
        self._pending_acks[message.message_id] = entry
        if context is not None:
            # The envelope holds a pending token: a dropped request's
            # arrival-time bookkeeping must not complete the exchange
            # while a retransmission may still extend it.
            context.pending += 1
        self.kernel.send(message, context=context)
        self._arm_retry(entry)

    def _retry_timeout_for(self, attempt: int) -> float:
        """Capped exponential backoff: 1x, 2x, 4x, ... up to 8x."""
        return self.retry_timeout_ms * min(2.0 ** attempt, 8.0)

    def _arm_retry(self, entry: _PendingAck) -> None:
        # post_keyed declares the retry timer's shard affinity (the
        # sender's home shard) and enqueues directly there, bypassing
        # the cross-shard outbox — so a short timeout never violates
        # the sharded kernel's conservative lookahead window.
        self.simulator.post_keyed(
            entry.message.sender, self._retry_timeout_for(entry.attempt),
            self._check_reliable, entry.message.message_id, entry.attempt)

    def _check_reliable(self, message_id: str, attempt: int) -> None:
        """One retry timer firing: retransmit, give up, or stand down."""
        entry = self._pending_acks.get(message_id)
        if entry is None or entry.attempt != attempt:
            return  # acked meanwhile, or a newer attempt armed its own timer
        sender = entry.message.sender
        peer = self.peers.get(sender)
        if (peer is None or not peer.online) and sender not in self.kernel.virtual_nodes:
            # The sender crashed or churned offline: nobody is left to
            # retransmit.  Settle quietly — this is the sender's death,
            # not a delivery timeout.
            self._settle_reliable(message_id, entry)
            return
        if entry.attempt + 1 >= self.retry_max_attempts:
            self.stats.record_timeout()
            self._settle_reliable(message_id, entry)
            return
        entry.attempt += 1
        self.stats.record_retry()
        self.kernel.send(entry.message, context=entry.context)
        self._arm_retry(entry)

    def _settle_reliable(self, message_id: str, entry: _PendingAck) -> None:
        del self._pending_acks[message_id]
        if entry.context is not None:
            self.kernel.release(entry.context)

    def _on_ack(self, peer: Optional[Peer], message: Message, context) -> None:
        """The sender's ACK arrival: resolve the pending envelope.

        Idempotent under duplication — a retransmitted original
        produces multiple ACKs carrying the same message id, and every
        one after the first finds the table entry already gone.
        """
        entry = self._pending_acks.pop(message.message_id, None)
        if entry is None:
            return
        if entry.context is not None:
            self.kernel.release(entry.context)

    def _fault_crash(self, peer_id: str) -> None:
        """A crash-stop failure from the fault plan: the peer goes
        offline permanently (never rescheduled), exactly like an
        ungraceful churn departure."""
        peer = self.peers.get(peer_id)
        if peer is None or not peer.online:
            return
        self.depart(peer_id, graceful=False)

    # ------------------------------------------------------------------
    # Chunked downloads: stall detection and replica failover
    # ------------------------------------------------------------------
    def _chunk_sizes(self, payload_bytes: int) -> tuple:
        chunk_bytes = self.download_chunk_bytes
        assert chunk_bytes is not None
        total = max(1, math.ceil(payload_bytes / chunk_bytes))
        return tuple([chunk_bytes] * (total - 1)
                     + [payload_bytes - chunk_bytes * (total - 1)])

    def _begin_chunked_serve(self, peer: Peer, stored: StoredObject,
                             context: RetrieveContext) -> None:
        """The provider streams the whole object as paced chunk emissions.

        Unlike the legacy single-response path — which schedules every
        delivery up front, so a provider crash mid-transfer changes
        nothing — each chunk is emitted by its own event that checks
        the provider is still online.  A crash-stop between chunks
        therefore strands the rest of the stream, which is exactly what
        the requester's stall watchdog exists to notice.

        Attachments stream *first* (each one chunked like the document)
        and the document chunks come last: the assembled object rides
        the very final chunk, so ``context.stored`` is only set once
        everything arrived and a stall at *any* point is recoverable by
        the watchdog's full restart against a surviving replica.
        """
        sizes = self._chunk_sizes(len(stored.to_xml_text().encode("utf-8")))
        uris = tuple(uri for uri in stored.metadata.get("__attachments__", [])
                     if peer.repository.attachments.has(uri))
        if uris:
            self._emit_attachment(peer.peer_id, stored, uris, sizes, 0, 0,
                                  context, False)
        else:
            self._emit_chunk(peer.peer_id, stored, sizes, 0, context, False)

    def _stream_live(self, provider_id: str, context: RetrieveContext) -> bool:
        """Is this emission chain still the download's active stream?"""
        peer = self.peers.get(provider_id)
        if peer is None or not peer.online:
            return False  # crash-stop mid-transfer: the rest never leaves
        if context.done or context.stored is not None \
                or context.provider_id != provider_id:
            return False  # completed meanwhile, or the requester failed over
        return True

    def _emit_chunk(self, provider_id: str, stored: StoredObject,
                    sizes: tuple, index: int, context: RetrieveContext,
                    holds_token: bool) -> None:
        """Emit document chunk ``index`` and schedule the next emission.

        Scheduled emissions hold a pending token on the context so the
        exchange cannot complete between two chunks; the token is
        released here whatever path the emission takes.
        """
        try:
            if not self._stream_live(provider_id, context):
                return
            size = sizes[index]
            total = len(sizes)
            latency = self.simulator.transfer_time(
                provider_id, context.requester_id, size,
                bandwidth_kbps=context.bandwidth_kbps)
            chunk = download_chunk(provider_id, context.requester_id,
                                   context.resource_id, index=index, total=total,
                                   size_bytes=size,
                                   payload_object=stored if index == total - 1 else None)
            self.kernel.send(chunk, context=context, latency_ms=latency)
            if index + 1 < total:
                transmission = latency - self.simulator.link_latency(
                    provider_id, context.requester_id)
                context.pending += 1
                self.simulator.post_keyed(provider_id, transmission, self._emit_chunk,
                                          provider_id, stored, sizes, index + 1,
                                          context, True)
        finally:
            if holds_token:
                self.kernel.release(context)

    def _emit_attachment(self, provider_id: str, stored: StoredObject,
                         uris: tuple, doc_sizes: tuple, uri_index: int,
                         chunk_index: int, context: RetrieveContext,
                         holds_token: bool) -> None:
        """Emit one chunk of one attachment, paced like the doc stream.

        After the last chunk of the last attachment the chain hands
        over to :meth:`_emit_chunk` for the document itself.
        """
        try:
            if not self._stream_live(provider_id, context):
                return
            peer = self.peers[provider_id]
            uri = uris[uri_index]
            transmission = 0.0
            last_of_attachment = True
            if peer.repository.attachments.has(uri):
                attachment = peer.repository.attachments.serve(uri)
                sizes = self._chunk_sizes(attachment.size_bytes)
                size = sizes[chunk_index]
                last_of_attachment = chunk_index + 1 >= len(sizes)
                latency = self.simulator.transfer_time(
                    provider_id, context.requester_id, size,
                    bandwidth_kbps=context.bandwidth_kbps)
                transfer = attachment_transfer(
                    provider_id, context.requester_id, context.resource_id,
                    uri=uri, size_bytes=size,
                    payload_object=attachment if last_of_attachment else None,
                    chunk_index=chunk_index, chunk_total=len(sizes))
                self.kernel.send(transfer, context=context, latency_ms=latency)
                transmission = latency - self.simulator.link_latency(
                    provider_id, context.requester_id)
            context.pending += 1
            if not last_of_attachment:
                self.simulator.post_keyed(provider_id, transmission,
                                          self._emit_attachment, provider_id,
                                          stored, uris, doc_sizes, uri_index,
                                          chunk_index + 1, context, True)
            elif uri_index + 1 < len(uris):
                self.simulator.post_keyed(provider_id, transmission,
                                          self._emit_attachment, provider_id,
                                          stored, uris, doc_sizes, uri_index + 1,
                                          0, context, True)
            else:
                self.simulator.post_keyed(provider_id, transmission,
                                          self._emit_chunk, provider_id, stored,
                                          doc_sizes, 0, context, True)
        finally:
            if holds_token:
                self.kernel.release(context)

    def _download_progress(self, context: RetrieveContext) -> tuple:
        """The watchdog's progress mark: any arrival moves it.

        Bytes (not chunk ordinals) are the primary signal so progress
        during the attachment phase — when ``chunks_received`` is still
        empty — keeps the watchdog quiet.
        """
        return (context.transfer_bytes, len(context.chunks_received),
                context.provider_id, context.provider_attempts)

    def _arm_download_watchdog(self, context: RetrieveContext) -> None:
        # Keyed to the requester: the watchdog is the requester's own
        # timer, so it runs on the requester's home shard and stays
        # lookahead-safe at any timeout value.
        self.simulator.post_keyed(
            context.requester_id, self.download_stall_timeout_ms,
            self._check_download, context, self._download_progress(context))

    def _check_download(self, context: RetrieveContext, progress_then: tuple) -> None:
        """One watchdog firing: re-arm on progress, recover on stall."""
        if context.done or context.stored is not None or not context.watchdog_held:
            return
        requester = self.peers.get(context.requester_id)
        if requester is None or not requester.online:
            # Nobody is left to collect the download.
            self._release_watchdog(context)
            return
        if self._download_progress(context) != progress_then:
            self._arm_download_watchdog(context)
            return
        self._recover_download(context)

    def _recover_download(self, context: RetrieveContext) -> None:
        """A stalled transfer: re-request the provider, then fail over.

        A provider that is still online gets ``retry_max_attempts``
        requests in total (the stall may have been a lost request or a
        lost chunk).  A dead or exhausted provider is struck off and
        the download restarts against the next-ranked replica from the
        registry — deterministically, so a mid-transfer crash degrades
        to a slower download instead of a lost one.  With no replica
        left the watchdog stands down and the exchange completes as a
        failed transfer.
        """
        provider = self.peers.get(context.provider_id)
        if provider is not None and provider.online \
                and context.provider_attempts + 1 < self.retry_max_attempts:
            context.provider_attempts += 1
            self.stats.record_retry()
        else:
            context.failed_providers.append(context.provider_id)
            next_provider = self.locate_provider(
                context.resource_id,
                exclude=[context.requester_id, *context.failed_providers])
            if next_provider is None:
                self.stats.record_timeout()
                self._release_watchdog(context)
                return
            self.stats.record_failover()
            context.provider_id = next_provider
            context.provider_attempts = 0
        # Restart the stream: stale partial state is discarded
        # (transfer_bytes keeps accumulating — the wasted wire bytes
        # are an honest cost of the recovery).
        context.error = None
        context.chunks_received.clear()
        context.extra.pop("chunk_payload", None)
        request = download_request(context.requester_id, context.provider_id,
                                   context.resource_id)
        self.send_reliable(request, context=context)
        self._arm_download_watchdog(context)

    def _release_watchdog(self, context: RetrieveContext) -> None:
        if context.watchdog_held:
            context.watchdog_held = False
            self.kernel.release(context)

    # ------------------------------------------------------------------
    # Download message handlers (shared by every protocol)
    # ------------------------------------------------------------------
    def _on_download_request(self, peer: Optional[Peer], message: Message,
                             context) -> None:
        """The provider serves the object: a response event for the
        document plus one transfer event per attachment, each arriving
        after its cumulative transmission time."""
        if peer is None or not isinstance(context, RetrieveContext):
            return
        if peer.peer_id != context.provider_id:
            return  # a late retransmission reached a struck-off provider
        try:
            stored = peer.repository.retrieve(message.resource_id)
        except ObjectNotFoundError as error:
            context.error = error
            return
        if self.download_chunk_bytes is not None:
            if context.extra.get("serving") == (peer.peer_id, context.provider_attempts):
                return  # a duplicated request: this stream is already running
            context.extra["serving"] = (peer.peer_id, context.provider_attempts)
            self._begin_chunked_serve(peer, stored, context)
            return
        payload = len(stored.to_xml_text().encode("utf-8"))
        latency = self.simulator.transfer_time(peer.peer_id, context.requester_id, payload,
                                               bandwidth_kbps=context.bandwidth_kbps)
        response = download_response(peer.peer_id, context.requester_id, message.resource_id,
                                     payload_bytes=payload, message_id=message.message_id,
                                     payload_object=stored)
        self.kernel.send(response, context=context, latency_ms=latency)
        for uri in stored.metadata.get("__attachments__", []):
            if not peer.repository.attachments.has(uri):
                continue
            attachment = peer.repository.attachments.serve(uri)
            latency += self.simulator.transfer_time(peer.peer_id, context.requester_id,
                                                    attachment.size_bytes,
                                                    bandwidth_kbps=context.bandwidth_kbps)
            transfer = attachment_transfer(peer.peer_id, context.requester_id,
                                           message.resource_id, uri=uri,
                                           size_bytes=attachment.size_bytes,
                                           payload_object=attachment)
            self.kernel.send(transfer, context=context, latency_ms=latency)

    def _on_download_response(self, peer: Optional[Peer], message: Message,
                              context) -> None:
        """The requester receives the document (replicating it and
        re-announcing through this protocol's own publish path) or one
        attachment.  A requester that churned offline never gets here —
        the kernel dropped the delivery."""
        if peer is None or not isinstance(context, RetrieveContext):
            return
        if message.attachment_uri:
            if message.chunk_total:
                # A chunk of a streamed attachment: partial chunks only
                # count bytes; the attachment itself rides the final
                # chunk of its stream.
                context.transfer_bytes += message.payload_bytes
                attachment = message.payload_object
                if attachment is None:
                    return
                seen = context.extra.setdefault("attachments_seen", set())
                if message.attachment_uri in seen:
                    return  # a duplicate, or a failover re-serving it
                seen.add(message.attachment_uri)
                peer.repository.attachments.receive(attachment)
                context.attachments_transferred += 1
                return
            attachment = message.payload_object
            if attachment is None:
                return
            if self.faults is not None:
                # Duplicate-tolerance under injected faults: each
                # attachment counts once per download.  (Gated so the
                # pinned faults=None byte accounting stays untouched.)
                seen = context.extra.setdefault("attachments_seen", set())
                if message.attachment_uri in seen:
                    return
                seen.add(message.attachment_uri)
            peer.repository.attachments.receive(attachment)
            context.attachments_transferred += 1
            context.transfer_bytes += attachment.size_bytes
            return
        if message.chunk_total:
            self._on_chunk_arrival(peer, message, context)
            return
        stored = message.payload_object
        if stored is None:
            return
        if context.stored is not None:
            return  # a duplicated response: the document already arrived
        context.transfer_bytes += message.payload_bytes
        self._complete_document(peer, context, stored)

    def _on_chunk_arrival(self, peer: Peer, message: Message,
                          context: RetrieveContext) -> None:
        """One chunk of a chunked download reached the requester."""
        if context.stored is not None:
            return  # the document already completed (a straggler chunk)
        context.transfer_bytes += message.payload_bytes
        if message.chunk_index in context.chunks_received:
            return  # a duplicated delivery: bytes burned, no progress
        context.chunks_received.add(message.chunk_index)
        context.chunk_total = message.chunk_total
        if message.payload_object is not None:
            # The assembled object rides the final chunk; stash it in
            # case faults deliver chunks out of order.
            context.extra["chunk_payload"] = message.payload_object
        if len(context.chunks_received) >= message.chunk_total:
            stored = context.extra.pop("chunk_payload", None)
            if stored is None:
                return  # payload chunk lost; the watchdog will re-request
            self._complete_document(peer, context, stored)

    def _complete_document(self, peer: Peer, context: RetrieveContext,
                           stored: StoredObject) -> None:
        """The document arrived in full: replicate and re-announce it."""
        context.stored = stored
        replica = peer.repository.publish(
            stored.community_id, stored.document, dict(stored.metadata), title=stored.title
        )
        self.replicas.note_replica(replica.resource_id, peer.peer_id,
                                   at_ms=self.simulator.now)
        context.replicated = True
        # The new replica is announced so later searches can find it here.
        self.publish(peer.peer_id, stored.community_id, replica.resource_id,
                     dict(stored.metadata), title=stored.title)
        self._release_watchdog(context)
        # Parallel workers replicate this completion to the rest of the
        # fleet at the next barrier (no-op in serial execution).
        self.kernel.note_document_completed(peer, context, stored)

    def _on_query_hit(self, peer: Optional[Peer], message: Message,
                      context) -> None:
        """Results ride the QUERY-HIT and count only on arrival at an
        online origin: if the origin churned offline while the hit was
        in flight, the kernel dropped the delivery and the promised
        results never existed."""
        if peer is None or not isinstance(context, QueryContext):
            return
        # With caching on, duplicates cannot arrive: every generation
        # site — a cached serving or a direct answerer — filters and
        # registers against the query's promised-identities set at
        # claim time (see ``_promised_results``), so each
        # (provider, resource) is claimed and sent at most once.
        results = message.carried_results
        if self.faults is not None:
            # Injected duplication can replay a QUERY (the answerer
            # responds twice) or a QUERY-HIT (the same hit arrives
            # twice); each (provider, resource) counts once per query.
            # (Gated so the pinned faults=None path stays untouched.)
            seen = context.extra.setdefault("hit_identities", set())
            results = [result for result in results
                       if (result.provider_id, result.resource_id) not in seen]
            seen.update((result.provider_id, result.resource_id)
                        for result in results)
        for result in results:
            if len(context.results) >= context.max_results:
                break
            context.add_result(result)

    # ------------------------------------------------------------------
    # Hooks for subclasses
    # ------------------------------------------------------------------
    def _register_handlers(self, kernel: EventKernel) -> None:
        """Register the shared handlers; subclasses extend via super()."""
        kernel.register(MessageType.DOWNLOAD_REQUEST, self._on_download_request)
        kernel.register(MessageType.DOWNLOAD_RESPONSE, self._on_download_response)
        kernel.register(MessageType.QUERY_HIT, self._on_query_hit)
        kernel.register(MessageType.ACK, self._on_ack)

    def _on_peer_added(self, peer: Peer) -> None:
        """Subclass hook: wire a new peer into the overlay."""

    def _on_peer_removed(self, peer: Peer) -> None:
        """Subclass hook: unwire a removed peer."""

    def _on_peer_departed(self, peer: Peer) -> None:
        """Subclass hook: a peer went offline (churn)."""

    def _on_peer_returned(self, peer: Peer) -> None:
        """Subclass hook: a peer came back online (churn)."""

    # ------------------------------------------------------------------
    # Live-membership hooks (protocol traffic instead of free mutation)
    # ------------------------------------------------------------------
    def _on_peer_joined_live(self, peer: Peer) -> None:
        """Subclass hook: a peer arrived or returned; emit join traffic."""

    def _on_peer_left_live(self, peer: Peer) -> None:
        """Subclass hook: a peer crashed/departed.  Only physically
        observable effects belong here (state held *on* the departed
        node dies with it); everything held *about* it elsewhere must
        persist until repair traffic notices."""

    def _announce_departure_live(self, peer: Peer) -> None:
        """Subclass hook: a graceful goodbye (UNREGISTER/LEAVE traffic)."""

    def _on_maintenance_tick(self, now: float) -> None:
        """Subclass hook: one recurring maintenance round (heartbeats,
        lease renewals, expiry sweeps).  Runs as a kernel event."""

    def _stamp_freshness(self, now: float) -> None:
        """Subclass hook: initialize heartbeat/lease stamps at go-live."""

    # ------------------------------------------------------------------
    def _account(self, message: Message) -> None:
        """Record one message in the statistics."""
        self.stats.record_message(message)

    def describe(self) -> str:
        online = len(self.online_peers())
        return f"{self.protocol_name} network: {online}/{len(self.peers)} peers online"
