"""Peer-to-peer network substrate.

The paper deliberately leaves the network layer pluggable: "U-P2P does
not focus on the underlying network architecture or discriminate
between centralized or distributed approaches to searching, peer
discovery, message routing or security" (§IV-B), and the community
schema of Fig. 3 enumerates Napster, Gnutella and FastTrack as protocol
values.  This package provides those three network organisations behind
one interface, on top of a small discrete-event simulator, so the rest
of the system (and the experiments) can swap them freely:

* :class:`repro.network.centralized.CentralizedProtocol` — a Napster-
  style central index server.
* :class:`repro.network.gnutella.GnutellaProtocol` — TTL-scoped query
  flooding with duplicate suppression.
* :class:`repro.network.superpeer.SuperPeerProtocol` — a FastTrack-
  style two-tier network of super-peers and leaves.
* :class:`repro.network.rendezvous.RendezvousProtocol` — a JXTA-style
  rendezvous/advertisement overlay with leases (the §VI future-work
  network layer).
"""

from repro.network.base import PeerNetwork, SearchResponse, SearchResult
from repro.network.centralized import CentralizedProtocol
from repro.network.churn import ChurnModel
from repro.network.errors import NetworkError, PeerOfflineError, UnknownPeerError
from repro.network.gnutella import GnutellaProtocol
from repro.network.messages import Message, MessageType
from repro.network.peers import Peer
from repro.network.rendezvous import RendezvousProtocol
from repro.network.simulator import NetworkSimulator
from repro.network.stats import NetworkStats
from repro.network.superpeer import SuperPeerProtocol
from repro.network.topology import Topology, build_topology

__all__ = [
    "PeerNetwork",
    "SearchResult",
    "SearchResponse",
    "CentralizedProtocol",
    "GnutellaProtocol",
    "SuperPeerProtocol",
    "RendezvousProtocol",
    "Peer",
    "NetworkSimulator",
    "NetworkStats",
    "Message",
    "MessageType",
    "Topology",
    "build_topology",
    "ChurnModel",
    "NetworkError",
    "UnknownPeerError",
    "PeerOfflineError",
]
