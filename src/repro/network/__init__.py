"""Peer-to-peer network substrate.

The paper deliberately leaves the network layer pluggable: "U-P2P does
not focus on the underlying network architecture or discriminate
between centralized or distributed approaches to searching, peer
discovery, message routing or security" (§IV-B), and the community
schema of Fig. 3 enumerates Napster, Gnutella and FastTrack as protocol
values.  This package provides those three network organisations behind
one interface, on top of a small discrete-event simulator, so the rest
of the system (and the experiments) can swap them freely:

* :class:`repro.network.centralized.CentralizedProtocol` — a Napster-
  style central index server.
* :class:`repro.network.gnutella.GnutellaProtocol` — TTL-scoped query
  flooding with duplicate suppression.
* :class:`repro.network.superpeer.SuperPeerProtocol` — a FastTrack-
  style two-tier network of super-peers and leaves.
* :class:`repro.network.rendezvous.RendezvousProtocol` — a JXTA-style
  rendezvous/advertisement overlay with leases (the §VI future-work
  network layer).
"""

# Leaf modules (no dependency on the engine) import eagerly; the
# network classes built *on* the engine resolve lazily below, so
# ``import repro.engine`` — whose kernel needs ``network.messages`` —
# does not re-enter this package while the engine is still initializing.
from repro.network.errors import (
    DuplicatePeerError,
    NetworkError,
    PeerOfflineError,
    TransferError,
    UnknownPeerError,
)
from repro.network.messages import Message, MessageType
from repro.network.peers import Peer
from repro.network.simulator import NetworkSimulator
from repro.network.stats import NetworkStats
from repro.network.topology import Topology, build_topology

_LAZY = {
    "PeerNetwork": ("repro.network.base", "PeerNetwork"),
    "SearchResult": ("repro.network.base", "SearchResult"),
    "SearchResponse": ("repro.network.base", "SearchResponse"),
    "RetrieveResult": ("repro.network.base", "RetrieveResult"),
    "CentralizedProtocol": ("repro.network.centralized", "CentralizedProtocol"),
    "GnutellaProtocol": ("repro.network.gnutella", "GnutellaProtocol"),
    "SuperPeerProtocol": ("repro.network.superpeer", "SuperPeerProtocol"),
    "RendezvousProtocol": ("repro.network.rendezvous", "RendezvousProtocol"),
    "ChurnModel": ("repro.network.churn", "ChurnModel"),
    "PopulationModel": ("repro.network.membership", "PopulationModel"),
    "MembershipEvent": ("repro.network.membership", "MembershipEvent"),
    "BloomFilter": ("repro.network.routing", "BloomFilter"),
    "AttenuatedFilter": ("repro.network.routing", "AttenuatedFilter"),
    "RoutingIndex": ("repro.network.routing", "RoutingIndex"),
}


def __getattr__(name: str):
    target = _LAZY.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(target[0]), target[1])
    globals()[name] = value
    return value


__all__ = [
    "PeerNetwork",
    "SearchResult",
    "SearchResponse",
    "RetrieveResult",
    "CentralizedProtocol",
    "GnutellaProtocol",
    "SuperPeerProtocol",
    "RendezvousProtocol",
    "Peer",
    "NetworkSimulator",
    "NetworkStats",
    "Message",
    "MessageType",
    "Topology",
    "build_topology",
    "ChurnModel",
    "PopulationModel",
    "MembershipEvent",
    "BloomFilter",
    "AttenuatedFilter",
    "RoutingIndex",
    "NetworkError",
    "UnknownPeerError",
    "PeerOfflineError",
    "DuplicatePeerError",
    "TransferError",
]
