"""Protocol messages exchanged between peers.

The message vocabulary follows the Gnutella 0.4 descriptor set (ping,
pong, query, query-hit, push) extended with the registration and
download messages the centralized and super-peer organisations need.
Only the fields that influence routing and cost accounting are
modelled; payload size is estimated from the carried XML so the
message-cost experiments report realistic byte counts.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Optional


class MessageType(Enum):
    """Kinds of protocol message."""

    PING = "ping"
    PONG = "pong"
    QUERY = "query"
    QUERY_HIT = "query-hit"
    PUSH = "push"
    REGISTER = "register"          # centralized / super-peer metadata upload
    UNREGISTER = "unregister"
    DOWNLOAD_REQUEST = "download-request"
    DOWNLOAD_RESPONSE = "download-response"
    # Membership lifecycle (live_membership mode): joins, graceful
    # leaves, two-tier attachment and advertisement lease renewal all
    # travel through the kernel like any other protocol traffic.
    JOIN = "join"
    LEAVE = "leave"
    LEAF_ATTACH = "leaf-attach"
    LEAF_DETACH = "leaf-detach"
    AD_RENEW = "ad-renew"
    # Reliable-delivery envelope: a header-only acknowledgement echoing
    # the acknowledged message's id (see ``PeerNetwork.send_reliable``).
    ACK = "ack"


_HEADER_BYTES = 23  # Gnutella descriptor header size
_message_counter = itertools.count(1)


def metadata_wire_bytes(metadata: dict[str, list[str]]) -> int:
    """Approximate wire size of one object's searchable metadata.

    The single definition every adapter uses for REGISTER / AD-RENEW
    payload accounting — the cross-protocol control-overhead comparison
    only holds if all of them measure bytes the same way.
    """
    return sum(len(path) + sum(len(value) for value in values)
               for path, values in metadata.items())


def next_message_id() -> str:
    """Globally unique message identifier (for duplicate suppression).

    Unpadded on purpose: the id is an opaque correlation token created
    once per message on the kernel hot path, and zero-padding costs
    measurable format time at flood volumes.
    """
    return f"msg-{next(_message_counter)}"


@dataclass(slots=True)
class Message:
    """One protocol message in flight.

    ``carried_results`` and ``payload_object`` model the data riding a
    message (query hits on a QUERY-HIT, the stored object or one
    attachment on a DOWNLOAD-RESPONSE).  The receiving handler applies
    them on *arrival*, so a recipient that churns offline while the
    message is in flight never observes the payload — the drop is the
    failure model, not a special case.  Neither field contributes to
    ``size_bytes``; the wire cost is already in ``payload_bytes``.

    The class is slotted: a flood constructs one message per neighbour
    per hop, so construction cost is squarely on the kernel hot path.
    ``query_xml`` holds a *shared* reference to the query's wire form —
    serialized once per search, never per hop.
    """

    type: MessageType
    sender: str
    recipient: str
    message_id: str = field(default_factory=next_message_id)
    ttl: int = 7
    hops: int = 0
    payload_bytes: int = 0
    query_xml: str = ""
    resource_id: str = ""
    community_id: str = ""
    attachment_uri: str = ""
    carried_results: tuple = ()
    payload_object: object = None
    #: reliable-delivery envelope: when non-empty, the kernel sends an
    #: ACK back to this node id once the message is handled on arrival
    ack_to: str = ""
    #: chunked-download framing (``download_chunk_bytes`` mode): this
    #: chunk's ordinal and the transfer's chunk count (0 = unchunked)
    chunk_index: int = 0
    chunk_total: int = 0

    # Pickle support: a slotted dataclass round-trips through the
    # generic ``(None, slots_dict)`` protocol, which ships one dict and
    # sixteen field-name strings per message.  Cross-process shard
    # execution pickles whole outbox batches per barrier, so the state
    # is a bare tuple in slot order instead — and because pickle
    # memoizes *objects*, the shared ``query_xml`` wire form riding
    # every hop of one flood is serialized once per batch, never
    # re-rendered per message.
    def __getstate__(self):
        return (self.type, self.sender, self.recipient, self.message_id,
                self.ttl, self.hops, self.payload_bytes, self.query_xml,
                self.resource_id, self.community_id, self.attachment_uri,
                self.carried_results, self.payload_object, self.ack_to,
                self.chunk_index, self.chunk_total)

    def __setstate__(self, state) -> None:
        (self.type, self.sender, self.recipient, self.message_id,
         self.ttl, self.hops, self.payload_bytes, self.query_xml,
         self.resource_id, self.community_id, self.attachment_uri,
         self.carried_results, self.payload_object, self.ack_to,
         self.chunk_index, self.chunk_total) = state

    def forwarded(self, sender: str, recipient: str) -> "Message":
        """A copy of this message forwarded one hop further.

        The immutable query payload (``query_xml``, ``payload_bytes``)
        is shared, not recomputed — forwarding never re-serializes or
        re-measures the wire form.
        """
        return Message(
            type=self.type,
            sender=sender,
            recipient=recipient,
            message_id=self.message_id,
            ttl=self.ttl - 1,
            hops=self.hops + 1,
            payload_bytes=self.payload_bytes,
            query_xml=self.query_xml,
            resource_id=self.resource_id,
            community_id=self.community_id,
        )

    @property
    def size_bytes(self) -> int:
        """Total on-the-wire size (header plus payload)."""
        return _HEADER_BYTES + self.payload_bytes

    @property
    def expired(self) -> bool:
        return self.ttl <= 0


def query_message(sender: str, recipient: str, query_xml: str, *, ttl: int = 7,
                  community_id: str = "", payload_bytes: Optional[int] = None) -> Message:
    """Build a QUERY message carrying a serialized structured query.

    ``payload_bytes`` lets callers that measured the wire form once (a
    compiled plan) skip the per-message UTF-8 encode.
    """
    return Message(
        type=MessageType.QUERY,
        sender=sender,
        recipient=recipient,
        ttl=ttl,
        payload_bytes=payload_bytes if payload_bytes is not None
        else len(query_xml.encode("utf-8")),
        query_xml=query_xml,
        community_id=community_id,
    )


def query_hit_message(sender: str, recipient: str, *, result_count: int,
                      metadata_bytes: int, message_id: str) -> Message:
    """Build a QUERY-HIT carrying ``result_count`` results back to the origin."""
    return Message(
        type=MessageType.QUERY_HIT,
        sender=sender,
        recipient=recipient,
        message_id=message_id,
        payload_bytes=11 + metadata_bytes + 8 * result_count,
    )


def register_message(sender: str, recipient: str, *, community_id: str,
                     resource_id: str, metadata_bytes: int,
                     payload_object: object = None) -> Message:
    """Build a REGISTER message uploading one object's searchable metadata.

    ``payload_object`` optionally carries ``(metadata, title)`` for the
    live-membership path, where the recipient's handler inserts the
    record on *arrival* instead of the sender mutating remote state.
    """
    return Message(
        type=MessageType.REGISTER,
        sender=sender,
        recipient=recipient,
        community_id=community_id,
        resource_id=resource_id,
        payload_bytes=metadata_bytes,
        payload_object=payload_object,
    )


def unregister_message(sender: str, recipient: str, *, resource_id: str) -> Message:
    """Withdraw one registration (a graceful departure's farewell)."""
    return Message(
        type=MessageType.UNREGISTER,
        sender=sender,
        recipient=recipient,
        resource_id=resource_id,
        payload_bytes=len(resource_id.encode("utf-8")),
    )


def ping_message(sender: str, recipient: str, *, ttl: int = 1) -> Message:
    """A Gnutella 0.4 PING: header-only (keepalive or discovery probe)."""
    return Message(type=MessageType.PING, sender=sender, recipient=recipient, ttl=ttl)


def pong_message(sender: str, recipient: str, *, message_id: str) -> Message:
    """A Gnutella 0.4 PONG: the 14-byte address/shared-files payload."""
    return Message(
        type=MessageType.PONG,
        sender=sender,
        recipient=recipient,
        message_id=message_id,
        payload_bytes=14,
    )


def join_message(sender: str, recipient: str) -> Message:
    """Announce a peer's (re)appearance to a directory node."""
    return Message(
        type=MessageType.JOIN,
        sender=sender,
        recipient=recipient,
        payload_bytes=len(sender.encode("utf-8")),
    )


def leave_message(sender: str, recipient: str) -> Message:
    """Announce a graceful departure to a directory node."""
    return Message(
        type=MessageType.LEAVE,
        sender=sender,
        recipient=recipient,
        payload_bytes=len(sender.encode("utf-8")),
    )


def leaf_attach_message(sender: str, recipient: str) -> Message:
    """A leaf asks ``recipient`` (a super/rendezvous peer) to adopt it."""
    return Message(
        type=MessageType.LEAF_ATTACH,
        sender=sender,
        recipient=recipient,
        payload_bytes=len(sender.encode("utf-8")),
    )


def leaf_detach_message(sender: str, recipient: str) -> Message:
    """A leaf gracefully detaches from its super/rendezvous peer."""
    return Message(
        type=MessageType.LEAF_DETACH,
        sender=sender,
        recipient=recipient,
        payload_bytes=len(sender.encode("utf-8")),
    )


def ad_renew_message(sender: str, recipient: str, *, community_id: str,
                     resource_id: str, metadata_bytes: int,
                     payload_object: object = None) -> Message:
    """Renew (or repair) one advertisement's lease at a rendezvous peer.

    The renewal re-ships the advertisement's metadata, so it costs the
    same bytes as the original publication — the JXTA lease model's
    standing maintenance price.
    """
    return Message(
        type=MessageType.AD_RENEW,
        sender=sender,
        recipient=recipient,
        community_id=community_id,
        resource_id=resource_id,
        payload_bytes=metadata_bytes,
        payload_object=payload_object,
    )


def download_request(sender: str, recipient: str, resource_id: str) -> Message:
    return Message(
        type=MessageType.DOWNLOAD_REQUEST,
        sender=sender,
        recipient=recipient,
        resource_id=resource_id,
        payload_bytes=len(resource_id.encode("utf-8")),
    )


def download_response(sender: str, recipient: str, resource_id: str, *,
                      payload_bytes: int, message_id: Optional[str] = None,
                      payload_object: object = None) -> Message:
    return Message(
        type=MessageType.DOWNLOAD_RESPONSE,
        sender=sender,
        recipient=recipient,
        resource_id=resource_id,
        message_id=message_id or next_message_id(),
        payload_bytes=payload_bytes,
        payload_object=payload_object,
    )


def ack_message(sender: str, recipient: str, *, message_id: str) -> Message:
    """Acknowledge one reliably-sent message (header-only).

    The ACK reuses the acknowledged message's id, which is how the
    sender's pending-ACK table correlates it; a retransmitted original
    therefore produces ACKs that all resolve the same entry.
    """
    return Message(
        type=MessageType.ACK,
        sender=sender,
        recipient=recipient,
        message_id=message_id,
    )


def download_chunk(sender: str, recipient: str, resource_id: str, *,
                   index: int, total: int, size_bytes: int,
                   payload_object: object = None) -> Message:
    """One chunk of a chunked download (``download_chunk_bytes`` mode).

    The stored object rides the final chunk; the requester assembles
    the transfer from chunk ordinals, so loss or reordering of any
    chunk is detectable by the stall watchdog instead of silently
    corrupting the download.
    """
    return Message(
        type=MessageType.DOWNLOAD_RESPONSE,
        sender=sender,
        recipient=recipient,
        resource_id=resource_id,
        payload_bytes=size_bytes,
        chunk_index=index,
        chunk_total=total,
        payload_object=payload_object,
    )


def attachment_transfer(sender: str, recipient: str, resource_id: str, *,
                        uri: str, size_bytes: int, payload_object: object = None,
                        message_id: Optional[str] = None,
                        chunk_index: int = 0, chunk_total: int = 0) -> Message:
    """One attachment of a download, transferred as its own event.

    In chunked-download mode the attachment is itself streamed as
    paced chunks (``chunk_total`` set, the payload riding the final
    chunk) so a provider crash mid-attachment is detectable by the
    requester's stall watchdog.
    """
    return Message(
        type=MessageType.DOWNLOAD_RESPONSE,
        sender=sender,
        recipient=recipient,
        resource_id=resource_id,
        message_id=message_id or next_message_id(),
        payload_bytes=size_bytes,
        attachment_uri=uri,
        payload_object=payload_object,
        chunk_index=chunk_index,
        chunk_total=chunk_total,
    )
