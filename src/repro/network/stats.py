"""Network statistics collection for the experiment harness."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Optional

from repro.network.messages import Message, MessageType

#: message-type values per traffic class, used for the control / query /
#: download breakdown the membership experiments chart (overhead vs.
#: availability).  Registrations count as control: they are index
#: maintenance, not query answering.
CONTROL_TYPE_VALUES = frozenset({
    MessageType.PING.value, MessageType.PONG.value, MessageType.PUSH.value,
    MessageType.REGISTER.value, MessageType.UNREGISTER.value,
    MessageType.JOIN.value, MessageType.LEAVE.value,
    MessageType.LEAF_ATTACH.value, MessageType.LEAF_DETACH.value,
    MessageType.AD_RENEW.value, MessageType.ACK.value,
})
QUERY_TYPE_VALUES = frozenset({MessageType.QUERY.value, MessageType.QUERY_HIT.value})
DOWNLOAD_TYPE_VALUES = frozenset({
    MessageType.DOWNLOAD_REQUEST.value, MessageType.DOWNLOAD_RESPONSE.value,
})


@dataclass
class QueryRecord:
    """Outcome of one search operation (a row in the experiment tables)."""

    query_id: str
    origin: str
    community_id: str
    results: int
    messages: int
    bytes: int
    peers_probed: int
    latency_ms: float
    hops_to_first_result: Optional[int] = None


@dataclass
class DownloadRecord:
    """Outcome of one retrieve operation (replication provenance rows)."""

    resource_id: str
    requester: str
    provider: str
    bytes: int
    latency_ms: float
    attachments: int = 0


@dataclass
class NetworkStats:
    """Counters accumulated while a protocol runs."""

    messages_by_type: Counter = field(default_factory=Counter)
    bytes_by_type: Counter = field(default_factory=Counter)
    queries: list[QueryRecord] = field(default_factory=list)
    download_records: list[DownloadRecord] = field(default_factory=list)
    downloads: int = 0
    download_bytes: int = 0
    registrations: int = 0
    #: how long each purged piece of stale protocol state (a departed
    #: peer's registration, ad, or leaf record) outlived its owner's
    #: departure before repair traffic noticed, in virtual ms
    staleness_windows_ms: list[float] = field(default_factory=list)
    #: online-session time accumulated across all peers.  Sessions count
    #: when they close (an offline transition); call
    #: ``PeerNetwork.snapshot_uptime()`` at a measurement boundary to
    #: fold still-open sessions in, or the steadiest peers undercount.
    uptime_ms_total: float = 0.0
    #: query-result cache outcomes (``result_caching`` mode): lookups
    #: at any cache site that served a cached result set / that fell
    #: through to discovery (each site counts both ways, so the ratio
    #: compares across protocols)
    cache_hits: int = 0
    cache_misses: int = 0
    #: cached results served whose provider was offline at serve time —
    #: the stale answers the cache's TTL/invalidation rules bound
    cache_stale_served: int = 0
    # Fault / recovery axis (``faults`` + reliable-delivery modes): what
    # the injected faults cost and what the hardening recovered.
    #: deliveries lost to injected faults (loss draws + partition cuts)
    dropped: int = 0
    #: of ``dropped``, those cut by a scheduled partition window
    partition_dropped: int = 0
    #: extra deliveries produced by the duplication fault
    duplicated: int = 0
    #: reliable-envelope retransmissions plus same-provider download
    #: re-requests
    retries: int = 0
    #: reliable sends (or downloads) abandoned after the retry budget
    timeouts: int = 0
    #: downloads re-pointed at the next-ranked replica mid-transfer
    failovers: int = 0
    # Informed-routing axis (``informed_routing`` mode): what the
    # attenuated Bloom filters saved and what they cost.
    #: QUERY copies the routing filters pruned from the flood fan-out
    routing_pruned: int = 0
    #: hops where no neighbour's filter admitted the query and the
    #: blind fan-out ran instead (the no-lost-results fallback)
    routing_fallbacks: int = 0
    #: fringe copies a filter admitted that found no local match — the
    #: Bloom false positives actually paid for in messages
    routing_fp_forwards: int = 0
    #: filter-advertisement payload riding keepalive PONGs (bytes);
    #: the PONGs themselves are already counted as control traffic
    routing_filter_bytes: int = 0

    # ------------------------------------------------------------------
    def record_message(self, message: Message, copies: int = 1) -> None:
        self.record(message.type.value, message.size_bytes, copies)

    def record(self, type_value: str, size_bytes: int, copies: int = 1) -> None:
        """Count ``copies`` messages of one already-resolved type/size.

        The kernel resolves the enum value and wire size exactly once
        per message and calls this — the hot-path variant of
        :meth:`record_message`.
        """
        self.messages_by_type[type_value] += copies
        self.bytes_by_type[type_value] += copies * size_bytes

    def record_query(self, record: QueryRecord) -> None:
        self.queries.append(record)

    def record_download(self, size_bytes: int,
                        record: Optional[DownloadRecord] = None) -> None:
        self.downloads += 1
        self.download_bytes += size_bytes
        if record is not None:
            self.download_records.append(record)

    def record_registration(self) -> None:
        """One resource registration accepted at an index point."""
        self.registrations += 1

    def record_staleness(self, window_ms: float) -> None:
        """Note that stale state of a departed peer was just purged,
        ``window_ms`` of virtual time after the departure."""
        self.staleness_windows_ms.append(window_ms)

    def record_uptime(self, session_ms: float) -> None:
        """Accumulate one peer's completed online session."""
        self.uptime_ms_total += session_ms

    def record_cache_hit(self, *, stale_results: int = 0) -> None:
        """One query (or query hop) answered from a result cache."""
        self.cache_hits += 1
        self.cache_stale_served += stale_results

    def record_cache_miss(self) -> None:
        self.cache_misses += 1

    def record_drop(self, *, partition: bool = False) -> None:
        """One delivery lost to an injected fault."""
        self.dropped += 1
        if partition:
            self.partition_dropped += 1

    def record_duplicate(self) -> None:
        """One extra delivery produced by the duplication fault."""
        self.duplicated += 1

    def record_retry(self) -> None:
        """One retransmission (reliable envelope or download re-request)."""
        self.retries += 1

    def record_timeout(self) -> None:
        """One reliable exchange abandoned after exhausting its retries."""
        self.timeouts += 1

    def record_failover(self) -> None:
        """One download re-pointed at the next-ranked replica."""
        self.failovers += 1

    def record_routing_pruned(self, count: int = 1) -> None:
        """``count`` QUERY copies pruned by routing filters at one hop."""
        self.routing_pruned += count

    def record_routing_fallback(self) -> None:
        """One hop where no filter admitted and the blind fan-out ran."""
        self.routing_fallbacks += 1

    def record_routing_fp(self) -> None:
        """One filter-admitted fringe copy that found no local match."""
        self.routing_fp_forwards += 1

    def record_filter_advert(self, size_bytes: int) -> None:
        """One routing-filter advertisement piggybacked on a keepalive."""
        self.routing_filter_bytes += size_bytes

    def routing_summary(self) -> dict[str, int]:
        """The informed-routing axis as one comparable dictionary."""
        return {
            "routing_pruned": self.routing_pruned,
            "routing_fallbacks": self.routing_fallbacks,
            "routing_fp_forwards": self.routing_fp_forwards,
            "routing_filter_bytes": self.routing_filter_bytes,
        }

    def fault_summary(self) -> dict[str, int]:
        """The fault/recovery axis as one comparable dictionary."""
        return {
            "dropped": self.dropped,
            "partition_dropped": self.partition_dropped,
            "duplicated": self.duplicated,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "failovers": self.failovers,
        }

    def cache_hit_ratio(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    # ------------------------------------------------------------------
    @property
    def total_messages(self) -> int:
        return sum(self.messages_by_type.values())

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes_by_type.values())

    # ------------------------------------------------------------------
    # Traffic breakdown: control (membership/maintenance) vs. query vs.
    # download, so experiments can chart overhead against availability.
    # ------------------------------------------------------------------
    def _class_totals(self, type_values: frozenset) -> tuple[int, int]:
        messages = sum(count for value, count in self.messages_by_type.items()
                       if value in type_values)
        size = sum(count for value, count in self.bytes_by_type.items()
                   if value in type_values)
        return messages, size

    @property
    def control_messages(self) -> int:
        return self._class_totals(CONTROL_TYPE_VALUES)[0]

    @property
    def control_bytes(self) -> int:
        return self._class_totals(CONTROL_TYPE_VALUES)[1]

    @property
    def query_message_bytes(self) -> int:
        return self._class_totals(QUERY_TYPE_VALUES)[1]

    @property
    def download_message_bytes(self) -> int:
        return self._class_totals(DOWNLOAD_TYPE_VALUES)[1]

    def traffic_breakdown(self) -> dict[str, dict[str, int]]:
        """Messages and bytes per traffic class; classes are disjoint
        and together cover every recorded message type."""
        breakdown = {}
        for name, values in (("control", CONTROL_TYPE_VALUES),
                             ("query", QUERY_TYPE_VALUES),
                             ("download", DOWNLOAD_TYPE_VALUES)):
            messages, size = self._class_totals(values)
            breakdown[name] = {"messages": messages, "bytes": size}
        return breakdown

    def control_fraction(self) -> float:
        """Control bytes as a fraction of all bytes on the wire."""
        total = self.total_bytes
        return self.control_bytes / total if total else 0.0

    def mean_staleness_ms(self) -> float:
        if not self.staleness_windows_ms:
            return 0.0
        return sum(self.staleness_windows_ms) / len(self.staleness_windows_ms)

    def max_staleness_ms(self) -> float:
        return max(self.staleness_windows_ms, default=0.0)

    def messages_of(self, message_type: MessageType) -> int:
        return self.messages_by_type[message_type.value]

    def mean_messages_per_query(self) -> float:
        if not self.queries:
            return 0.0
        return sum(record.messages for record in self.queries) / len(self.queries)

    def mean_latency_ms(self) -> float:
        if not self.queries:
            return 0.0
        return sum(record.latency_ms for record in self.queries) / len(self.queries)

    def mean_results_per_query(self) -> float:
        if not self.queries:
            return 0.0
        return sum(record.results for record in self.queries) / len(self.queries)

    def success_rate(self) -> float:
        """Fraction of queries that returned at least one result."""
        if not self.queries:
            return 0.0
        return sum(1 for record in self.queries if record.results > 0) / len(self.queries)

    def mean_download_latency_ms(self) -> float:
        if not self.download_records:
            return 0.0
        return sum(record.latency_ms for record in self.download_records) / len(self.download_records)

    def summary(self) -> dict[str, float]:
        """A flat dictionary used by the benchmark reports."""
        return {
            "queries": float(len(self.queries)),
            "total_messages": float(self.total_messages),
            "total_bytes": float(self.total_bytes),
            "mean_messages_per_query": self.mean_messages_per_query(),
            "mean_latency_ms": self.mean_latency_ms(),
            "mean_results_per_query": self.mean_results_per_query(),
            "success_rate": self.success_rate(),
            "downloads": float(self.downloads),
            "download_bytes": float(self.download_bytes),
            "mean_download_latency_ms": self.mean_download_latency_ms(),
            "registrations": float(self.registrations),
            "control_bytes": float(self.control_bytes),
            "control_messages": float(self.control_messages),
            "control_fraction": self.control_fraction(),
            "mean_staleness_ms": self.mean_staleness_ms(),
            "max_staleness_ms": self.max_staleness_ms(),
            "uptime_ms_total": self.uptime_ms_total,
            "cache_hits": float(self.cache_hits),
            "cache_misses": float(self.cache_misses),
            "cache_hit_ratio": self.cache_hit_ratio(),
            "cache_stale_served": float(self.cache_stale_served),
            "dropped": float(self.dropped),
            "partition_dropped": float(self.partition_dropped),
            "duplicated": float(self.duplicated),
            "retries": float(self.retries),
            "timeouts": float(self.timeouts),
            "failovers": float(self.failovers),
            "routing_pruned": float(self.routing_pruned),
            "routing_fallbacks": float(self.routing_fallbacks),
            "routing_fp_forwards": float(self.routing_fp_forwards),
            "routing_filter_bytes": float(self.routing_filter_bytes),
        }

    def merge(self, other: "NetworkStats") -> None:
        """Fold another stats object into this one, additively.

        Every counter, per-type breakdown, record list and staleness
        window adds; merging the disjoint per-worker shares of one run
        must reproduce the single-process whole exactly (the records
        themselves carry no ordering constraint — consumers that care
        sort by their own keys).
        """
        self.messages_by_type.update(other.messages_by_type)
        self.bytes_by_type.update(other.bytes_by_type)
        self.queries.extend(other.queries)
        self.download_records.extend(other.download_records)
        self.downloads += other.downloads
        self.download_bytes += other.download_bytes
        self.registrations += other.registrations
        self.staleness_windows_ms.extend(other.staleness_windows_ms)
        self.uptime_ms_total += other.uptime_ms_total
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.cache_stale_served += other.cache_stale_served
        self.dropped += other.dropped
        self.partition_dropped += other.partition_dropped
        self.duplicated += other.duplicated
        self.retries += other.retries
        self.timeouts += other.timeouts
        self.failovers += other.failovers
        self.routing_pruned += other.routing_pruned
        self.routing_fallbacks += other.routing_fallbacks
        self.routing_fp_forwards += other.routing_fp_forwards
        self.routing_filter_bytes += other.routing_filter_bytes

    def reset(self) -> None:
        """Clear all counters (between experiment phases)."""
        self.messages_by_type.clear()
        self.bytes_by_type.clear()
        self.queries.clear()
        self.download_records.clear()
        self.downloads = 0
        self.download_bytes = 0
        self.registrations = 0
        self.staleness_windows_ms.clear()
        self.uptime_ms_total = 0.0
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_stale_served = 0
        self.dropped = 0
        self.partition_dropped = 0
        self.duplicated = 0
        self.retries = 0
        self.timeouts = 0
        self.failovers = 0
        self.routing_pruned = 0
        self.routing_fallbacks = 0
        self.routing_fp_forwards = 0
        self.routing_filter_bytes = 0
