"""Network statistics collection for the experiment harness."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Optional

from repro.network.messages import Message, MessageType


@dataclass
class QueryRecord:
    """Outcome of one search operation (a row in the experiment tables)."""

    query_id: str
    origin: str
    community_id: str
    results: int
    messages: int
    bytes: int
    peers_probed: int
    latency_ms: float
    hops_to_first_result: Optional[int] = None


@dataclass
class DownloadRecord:
    """Outcome of one retrieve operation (replication provenance rows)."""

    resource_id: str
    requester: str
    provider: str
    bytes: int
    latency_ms: float
    attachments: int = 0


@dataclass
class NetworkStats:
    """Counters accumulated while a protocol runs."""

    messages_by_type: Counter = field(default_factory=Counter)
    bytes_by_type: Counter = field(default_factory=Counter)
    queries: list[QueryRecord] = field(default_factory=list)
    download_records: list[DownloadRecord] = field(default_factory=list)
    downloads: int = 0
    download_bytes: int = 0
    registrations: int = 0

    # ------------------------------------------------------------------
    def record_message(self, message: Message, copies: int = 1) -> None:
        self.record(message.type.value, message.size_bytes, copies)

    def record(self, type_value: str, size_bytes: int, copies: int = 1) -> None:
        """Count ``copies`` messages of one already-resolved type/size.

        The kernel resolves the enum value and wire size exactly once
        per message and calls this — the hot-path variant of
        :meth:`record_message`.
        """
        self.messages_by_type[type_value] += copies
        self.bytes_by_type[type_value] += copies * size_bytes

    def record_query(self, record: QueryRecord) -> None:
        self.queries.append(record)

    def record_download(self, size_bytes: int,
                        record: Optional[DownloadRecord] = None) -> None:
        self.downloads += 1
        self.download_bytes += size_bytes
        if record is not None:
            self.download_records.append(record)

    # ------------------------------------------------------------------
    @property
    def total_messages(self) -> int:
        return sum(self.messages_by_type.values())

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes_by_type.values())

    def messages_of(self, message_type: MessageType) -> int:
        return self.messages_by_type[message_type.value]

    def mean_messages_per_query(self) -> float:
        if not self.queries:
            return 0.0
        return sum(record.messages for record in self.queries) / len(self.queries)

    def mean_latency_ms(self) -> float:
        if not self.queries:
            return 0.0
        return sum(record.latency_ms for record in self.queries) / len(self.queries)

    def mean_results_per_query(self) -> float:
        if not self.queries:
            return 0.0
        return sum(record.results for record in self.queries) / len(self.queries)

    def success_rate(self) -> float:
        """Fraction of queries that returned at least one result."""
        if not self.queries:
            return 0.0
        return sum(1 for record in self.queries if record.results > 0) / len(self.queries)

    def mean_download_latency_ms(self) -> float:
        if not self.download_records:
            return 0.0
        return sum(record.latency_ms for record in self.download_records) / len(self.download_records)

    def summary(self) -> dict[str, float]:
        """A flat dictionary used by the benchmark reports."""
        return {
            "queries": float(len(self.queries)),
            "total_messages": float(self.total_messages),
            "total_bytes": float(self.total_bytes),
            "mean_messages_per_query": self.mean_messages_per_query(),
            "mean_latency_ms": self.mean_latency_ms(),
            "mean_results_per_query": self.mean_results_per_query(),
            "success_rate": self.success_rate(),
            "downloads": float(self.downloads),
            "download_bytes": float(self.download_bytes),
            "mean_download_latency_ms": self.mean_download_latency_ms(),
            "registrations": float(self.registrations),
        }

    def reset(self) -> None:
        """Clear all counters (between experiment phases)."""
        self.messages_by_type.clear()
        self.bytes_by_type.clear()
        self.queries.clear()
        self.download_records.clear()
        self.downloads = 0
        self.download_bytes = 0
        self.registrations = 0
