"""Peer churn: sessions of availability followed by absences.

The robustness argument of the paper (popular objects get replicated
and therefore stay available as peers come and go) only means something
under churn.  The model is the usual one for early file-sharing
measurements: exponentially distributed session (online) and absence
(offline) durations, scheduled on the network simulator.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from repro.network.base import PeerNetwork


@dataclass
class ChurnEvent:
    """One recorded availability change."""

    time_ms: float
    peer_id: str
    online: bool


@dataclass
class ChurnModel:
    """Exponential on/off churn driven by the network's simulator."""

    network: PeerNetwork
    mean_session_ms: float = 30 * 60 * 1000.0
    mean_absence_ms: float = 10 * 60 * 1000.0
    seed: int = 0
    events: list[ChurnEvent] = field(default_factory=list)
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.mean_session_ms <= 0 or self.mean_absence_ms <= 0:
            raise ValueError("mean session and absence durations must be positive")
        self._rng = random.Random(self.seed)

    # ------------------------------------------------------------------
    def start(self, peer_ids: Optional[list[str]] = None) -> None:
        """Schedule the first departure of every (or the given) peer."""
        ids = peer_ids if peer_ids is not None else list(self.network.peers)
        for peer_id in ids:
            self._schedule_departure(peer_id)

    def _schedule_departure(self, peer_id: str) -> None:
        delay = self._rng.expovariate(1.0 / self.mean_session_ms)
        self.network.simulator.schedule(delay, lambda pid=peer_id: self._depart(pid))

    def _schedule_return(self, peer_id: str) -> None:
        delay = self._rng.expovariate(1.0 / self.mean_absence_ms)
        self.network.simulator.schedule(delay, lambda pid=peer_id: self._return(pid))

    def _depart(self, peer_id: str) -> None:
        if peer_id not in self.network.peers:
            return
        self.network.set_online(peer_id, False)
        self.events.append(ChurnEvent(self.network.simulator.now, peer_id, online=False))
        self._schedule_return(peer_id)

    def _return(self, peer_id: str) -> None:
        if peer_id not in self.network.peers:
            return
        self.network.set_online(peer_id, True)
        self.events.append(ChurnEvent(self.network.simulator.now, peer_id, online=True))
        self._schedule_departure(peer_id)

    # ------------------------------------------------------------------
    def expected_availability(self) -> float:
        """Steady-state probability that a peer is online."""
        return self.mean_session_ms / (self.mean_session_ms + self.mean_absence_ms)

    def observed_availability(self) -> float:
        """Fraction of peers currently online."""
        peers = self.network.peers
        if not peers:
            return 0.0
        return len(self.network.online_peers()) / len(peers)
