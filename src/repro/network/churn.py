"""Peer churn: sessions of availability followed by absences.

The original churn model — exponentially distributed session (online)
and absence (offline) durations, the usual model for early file-sharing
measurements — is now the simplest configuration of the generalized
:class:`~repro.network.membership.PopulationModel`, which adds
permanent departures, staged arrivals and flash crowds.  This module
keeps the old name and surface so existing experiments read unchanged;
scheduling goes through the simulator's no-allocation ``post`` fast
path like every other membership timer.
"""

from __future__ import annotations

from repro.network.membership import MembershipEvent, PopulationModel

#: legacy alias: churn consumers matched on ``event.online``, which
#: MembershipEvent still exposes
ChurnEvent = MembershipEvent


class ChurnModel(PopulationModel):
    """Exponential on/off churn driven by the network's simulator.

    A :class:`PopulationModel` restricted to session churn: departures
    are never permanent and no arrivals are staged.
    """
