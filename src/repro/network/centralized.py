"""Napster-style centralized network organisation.

A single index server holds the searchable metadata of every shared
object.  Publishing uploads metadata to the server (one REGISTER
message); searching is one QUERY to the server and one QUERY-HIT back;
object transfer still happens directly between peers.  This is the
organisation the U-P2P prototype effectively had (a central Magenta
database), and it is the baseline of the protocol-comparison
experiment.

On the event kernel the server is a *virtual node*: it owns no
repository, is always reachable, and its QUERY handler answers from the
central catalog/attribute index before scheduling the QUERY-HIT back —
so a query costs exactly two messages and one round trip, delivered on
the shared clock alongside every other in-flight query.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.engine.kernel import EventKernel, QueryContext
from repro.network.base import PeerNetwork, SearchResult
from repro.network.messages import (
    Message,
    MessageType,
    query_hit_message,
    query_message,
    register_message,
)
from repro.network.peers import Peer
from repro.storage.index import AttributeIndex
from repro.storage.query import Query

INDEX_SERVER_ID = "index-server"


@dataclass
class _CatalogEntry:
    """The server's record of one published object replica.

    The tuple-valued metadata view and its wire byte count are built
    once at registration and shared by every search result generated
    from this entry — answering a query never re-copies metadata.
    """

    resource_id: str
    community_id: str
    title: str
    metadata: dict[str, list[str]]
    providers: set[str] = field(default_factory=set)
    metadata_view: dict[str, tuple[str, ...]] = field(default_factory=dict)
    metadata_bytes: int = 0


class CentralizedProtocol(PeerNetwork):
    """A central index server plus ordinary peers."""

    protocol_name = "centralized"

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        self._index = AttributeIndex()
        self._catalog: dict[str, _CatalogEntry] = {}

    # ------------------------------------------------------------------
    def publish(self, peer_id: str, community_id: str, resource_id: str,
                metadata: dict[str, list[str]], *, title: str = "") -> None:
        peer = self._require_peer(peer_id)
        metadata_bytes = sum(len(p) + sum(len(v) for v in values) for p, values in metadata.items())
        message = register_message(peer_id, INDEX_SERVER_ID, community_id=community_id,
                                   resource_id=resource_id, metadata_bytes=metadata_bytes)
        self._account(message)
        self.stats.registrations += 1
        self.replicas.note_original(resource_id, peer_id, at_ms=self.simulator.now)

        entry = self._catalog.get(resource_id)
        if entry is None:
            entry = _CatalogEntry(
                resource_id=resource_id, community_id=community_id,
                title=title, metadata=dict(metadata),
                metadata_view={path: tuple(values) for path, values in metadata.items()},
                metadata_bytes=metadata_bytes,
            )
            self._catalog[resource_id] = entry
            self._index.add(community_id, resource_id, metadata)
        entry.providers.add(peer.peer_id)

    def withdraw(self, peer_id: str, resource_id: str) -> None:
        """Remove one provider of an object from the central catalog."""
        entry = self._catalog.get(resource_id)
        if entry is None:
            return
        entry.providers.discard(peer_id)
        if not entry.providers:
            self._index.remove(resource_id)
            del self._catalog[resource_id]

    # ------------------------------------------------------------------
    def start_search(self, origin_id: str, query: Query, *, max_results: int = 100,
                     **kwargs) -> QueryContext:
        self._require_peer(origin_id)
        plan = self.compile(query)
        wire_xml, wire_bytes = self.wire_form(query, plan)
        request = query_message(origin_id, INDEX_SERVER_ID, wire_xml,
                                community_id=query.community_id,
                                payload_bytes=wire_bytes)
        context = self.new_context(origin_id, query, max_results=max_results,
                                   query_id=request.message_id, plan=plan)
        context.peers_probed = 1
        self.kernel.send(request, context=context)
        return context

    # ------------------------------------------------------------------
    # Message handlers
    # ------------------------------------------------------------------
    def _register_handlers(self, kernel: EventKernel) -> None:
        super()._register_handlers(kernel)
        kernel.add_virtual_node(INDEX_SERVER_ID)
        kernel.register(MessageType.QUERY, self._on_query)

    def _on_query(self, peer: Optional[Peer], message: Message,
                  context: Optional[QueryContext]) -> None:
        """The server answers from the catalog, filtering offline providers
        *at delivery time* — churn between submission and arrival counts.
        The results ride the QUERY-HIT and are appended only when it
        arrives at a still-online origin."""
        if context is None or message.recipient != INDEX_SERVER_ID:
            return
        metadata_bytes = 0
        results: list[SearchResult] = []
        room = context.room()
        for resource_id in sorted(self._matching_ids(context)):
            entry = self._catalog[resource_id]
            for provider_id in sorted(entry.providers):
                provider = self.peers.get(provider_id)
                if provider is None or not provider.online:
                    continue
                result = SearchResult(
                    provider_id=provider_id,
                    resource_id=resource_id,
                    community_id=entry.community_id,
                    title=entry.title,
                    metadata=entry.metadata_view,
                    hops=1,
                )
                results.append(result)
                metadata_bytes += entry.metadata_bytes
                if len(results) >= room:
                    break
            if len(results) >= room:
                break
        context.claim(len(results))
        hit = query_hit_message(INDEX_SERVER_ID, context.origin_id, result_count=len(results),
                                metadata_bytes=metadata_bytes, message_id=message.message_id)
        hit.carried_results = tuple(results)
        self.kernel.send(hit, context=context,
                         latency_ms=self.simulator.now - context.started_at)

    # ------------------------------------------------------------------
    def _matching_ids(self, context: QueryContext) -> set[str]:
        # Query and CompiledQuery share the evaluation surface
        # (is_empty / community_id / evaluate), so the compiled plan
        # substitutes for the query wherever one exists.
        evaluator = context.plan if context.plan is not None else context.query
        if evaluator.is_empty:
            return {
                resource_id
                for resource_id, entry in self._catalog.items()
                if entry.community_id == evaluator.community_id
            }
        return evaluator.evaluate(self._index)

    # ------------------------------------------------------------------
    # Churn hooks: the catalog keeps entries of offline peers but search
    # filters them out; a peer that is removed permanently is withdrawn.
    # ------------------------------------------------------------------
    def _on_peer_removed(self, peer: Peer) -> None:
        for resource_id in list(self._catalog):
            self.withdraw(peer.peer_id, resource_id)

    # ------------------------------------------------------------------
    def catalog_size(self) -> int:
        """Number of distinct objects known to the server."""
        return len(self._catalog)

    def provider_count(self, resource_id: str) -> int:
        """How many peers currently provide ``resource_id`` (replication)."""
        entry = self._catalog.get(resource_id)
        if entry is None:
            return 0
        return sum(
            1 for provider in entry.providers
            if provider in self.peers and self.peers[provider].online
        )
