"""Napster-style centralized network organisation.

A single index server holds the searchable metadata of every shared
object.  Publishing uploads metadata to the server (one REGISTER
message); searching is one QUERY to the server and one QUERY-HIT back;
object transfer still happens directly between peers.  This is the
organisation the U-P2P prototype effectively had (a central Magenta
database), and it is the baseline of the protocol-comparison
experiment.

On the event kernel the server is a *virtual node*: it owns no
repository, is always reachable, and its QUERY handler answers from the
central catalog/attribute index before scheduling the QUERY-HIT back —
so a query costs exactly two messages and one round trip, delivered on
the shared clock alongside every other in-flight query.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.engine.kernel import EventKernel, QueryContext
from repro.network.base import PeerNetwork, SearchResult
from repro.network.messages import (
    Message,
    MessageType,
    join_message,
    leave_message,
    metadata_wire_bytes,
    ping_message,
    query_hit_message,
    query_message,
    register_message,
    unregister_message,
)
from repro.network.peers import Peer
from repro.storage.cache import QueryResultCache
from repro.storage.index import AttributeIndex
from repro.storage.interning import intern_view
from repro.storage.query import Query

INDEX_SERVER_ID = "index-server"


@dataclass
class _CatalogEntry:
    """The server's record of one published object replica.

    The tuple-valued metadata view and its wire byte count are built
    once at registration and shared by every search result generated
    from this entry — answering a query never re-copies metadata.
    """

    resource_id: str
    community_id: str
    title: str
    metadata: dict[str, list[str]]
    providers: set[str] = field(default_factory=set)
    metadata_view: dict[str, tuple[str, ...]] = field(default_factory=dict)
    metadata_bytes: int = 0


class CentralizedProtocol(PeerNetwork):
    """A central index server plus ordinary peers."""

    protocol_name = "centralized"

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        self._index = AttributeIndex()
        self._catalog: dict[str, _CatalogEntry] = {}
        #: the server's belief about who is alive: peer id -> virtual
        #: time its last heartbeat (JOIN / PING / REGISTER) arrived.
        #: Only meaningful in live-membership mode.
        self._server_heartbeats: dict[str, float] = {}
        #: the server-side result cache (``result_caching`` mode): the
        #: one place every query of this organisation passes through
        self._server_cache: Optional[QueryResultCache] = None

    # ------------------------------------------------------------------
    def publish(self, peer_id: str, community_id: str, resource_id: str,
                metadata: dict[str, list[str]], *, title: str = "") -> None:
        peer = self._require_peer(peer_id)
        metadata_bytes = metadata_wire_bytes(metadata)
        self.replicas.note_original(resource_id, peer_id, at_ms=self.simulator.now)
        if self.live_membership:
            # The registration is real traffic: the catalog learns of
            # the object when the REGISTER *arrives* at the server.
            # Reliable: a lost registration makes the object invisible
            # until the peer next rejoins.
            self.send_reliable(register_message(
                peer_id, INDEX_SERVER_ID, community_id=community_id,
                resource_id=resource_id, metadata_bytes=metadata_bytes,
                payload_object=(dict(metadata), title)))
            return
        message = register_message(peer_id, INDEX_SERVER_ID, community_id=community_id,
                                   resource_id=resource_id, metadata_bytes=metadata_bytes)
        self._account(message)
        self.stats.record_registration()
        self._insert_catalog_entry(peer.peer_id, community_id, resource_id,
                                   metadata, title, metadata_bytes)

    def _server_result_cache(self) -> Optional[QueryResultCache]:
        if not self.result_caching:
            return None
        if self._server_cache is None:
            self._server_cache = QueryResultCache(capacity=self.cache_capacity,
                                                  ttl_ms=self.cache_ttl_ms)
        return self._server_cache

    def _iter_caches(self):
        yield from super()._iter_caches()
        if self._server_cache is not None:
            yield self._server_cache

    def _insert_catalog_entry(self, provider_id: str, community_id: str,
                              resource_id: str, metadata: dict[str, list[str]],
                              title: str, metadata_bytes: int) -> None:
        if self._server_cache is not None:
            # A publish (or replica announcement) arriving at the server
            # is the invalidation traffic: the catalog version moves and
            # every cached answer filled before it goes stale.
            self._server_cache.bump_version()
        entry = self._catalog.get(resource_id)
        if entry is None:
            entry = _CatalogEntry(
                resource_id=resource_id, community_id=community_id,
                title=title, metadata=dict(metadata),
                metadata_view=intern_view(metadata),
                metadata_bytes=metadata_bytes,
            )
            self._catalog[resource_id] = entry
            self._index.add(community_id, resource_id, metadata)
        entry.providers.add(provider_id)

    def withdraw(self, peer_id: str, resource_id: str) -> None:
        """Remove one provider of an object from the central catalog."""
        entry = self._catalog.get(resource_id)
        if entry is None:
            return
        if self._server_cache is not None and peer_id in entry.providers:
            # The server learned this provider is gone (UNREGISTER, a
            # permanent removal, or its heartbeat lease lapsing): cached
            # answers naming it die the same moment the catalog's do.
            self._server_cache.invalidate_provider(peer_id)
        entry.providers.discard(peer_id)
        if not entry.providers:
            self._index.remove(resource_id)
            del self._catalog[resource_id]

    # ------------------------------------------------------------------
    def start_search(self, origin_id: str, query: Query, *, max_results: int = 100,
                     **kwargs) -> QueryContext:
        self._require_peer(origin_id)
        plan = self.compile(query)
        wire_xml, wire_bytes = self.wire_form(query, plan)
        request = query_message(origin_id, INDEX_SERVER_ID, wire_xml,
                                community_id=query.community_id,
                                payload_bytes=wire_bytes)
        context = self.new_context(origin_id, query, max_results=max_results,
                                   query_id=request.message_id, plan=plan)
        context.peers_probed = 1
        self.kernel.send(request, context=context)
        return context

    # ------------------------------------------------------------------
    # Message handlers
    # ------------------------------------------------------------------
    def _register_handlers(self, kernel: EventKernel) -> None:
        super()._register_handlers(kernel)
        kernel.add_virtual_node(INDEX_SERVER_ID)
        kernel.register(MessageType.QUERY, self._on_query)
        kernel.register(MessageType.REGISTER, self._on_register)
        kernel.register(MessageType.UNREGISTER, self._on_unregister)
        kernel.register(MessageType.JOIN, self._on_join)
        kernel.register(MessageType.LEAVE, self._on_leave)
        kernel.register(MessageType.PING, self._on_ping)

    def _on_query(self, peer: Optional[Peer], message: Message,
                  context: Optional[QueryContext]) -> None:
        """The server answers from the catalog, filtering offline providers
        *at delivery time* — churn between submission and arrival counts.
        The results ride the QUERY-HIT and are appended only when it
        arrives at a still-online origin."""
        if context is None or message.recipient != INDEX_SERVER_ID:
            return
        now = self.simulator.now
        cache = self._server_result_cache()
        if cache is not None:
            key = self._context_cache_key(context)
            cached = cache.get(key, now)
            if cached is not None:
                # Served straight from the result cache: same two-message
                # round trip, but no catalog/index evaluation — and the
                # entry may name providers that departed since the fill
                # (stale within the TTL / invalidation bounds).
                self._send_cached_hit(INDEX_SERVER_ID, context, cached,
                                      message_id=message.message_id,
                                      reply_when_empty=True)
                return
            self.stats.record_cache_miss()
        metadata_bytes = 0
        results: list[SearchResult] = []
        room = context.room()
        for resource_id in sorted(self._matching_ids(context)):
            entry = self._catalog[resource_id]
            for provider_id in sorted(entry.providers):
                provider = self.peers.get(provider_id)
                if provider is None or not provider.online:
                    continue
                result = SearchResult(
                    provider_id=provider_id,
                    resource_id=resource_id,
                    community_id=entry.community_id,
                    title=entry.title,
                    metadata=entry.metadata_view,
                    hops=1,
                )
                results.append(result)
                metadata_bytes += entry.metadata_bytes
                if len(results) >= room:
                    break
            if len(results) >= room:
                break
        if cache is not None:
            cache.put(key, tuple(results), metadata_bytes, now)
        context.claim(len(results))
        hit = query_hit_message(INDEX_SERVER_ID, context.origin_id, result_count=len(results),
                                metadata_bytes=metadata_bytes, message_id=message.message_id)
        hit.carried_results = tuple(results)
        self.kernel.send(hit, context=context,
                         latency_ms=self.simulator.now - context.started_at)

    # ------------------------------------------------------------------
    def _matching_ids(self, context: QueryContext) -> set[str]:
        # Query and CompiledQuery share the evaluation surface
        # (is_empty / community_id / evaluate), so the compiled plan
        # substitutes for the query wherever one exists.
        evaluator = context.plan if context.plan is not None else context.query
        if evaluator.is_empty:
            return {
                resource_id
                for resource_id, entry in self._catalog.items()
                if entry.community_id == evaluator.community_id
            }
        return evaluator.evaluate(self._index)

    # ------------------------------------------------------------------
    # Live-membership handlers: the server's *belief* about who is
    # alive (``_server_heartbeats``, which drives catalog decay) is
    # built from arriving messages only.  Query answering still filters
    # providers by reachability (``peer.online``) in both modes — a
    # result models an object the searcher could actually fetch — so
    # staleness shows up as the server's storage/purge cost, not as
    # dead results.
    # ------------------------------------------------------------------
    def _on_register(self, peer: Optional[Peer], message: Message, context) -> None:
        if message.recipient != INDEX_SERVER_ID or message.payload_object is None:
            return
        metadata, title = message.payload_object
        self.stats.record_registration()
        self._insert_catalog_entry(message.sender, message.community_id,
                                   message.resource_id, metadata, title,
                                   message.payload_bytes)
        self._server_heartbeats[message.sender] = self.simulator.now

    def _on_unregister(self, peer: Optional[Peer], message: Message, context) -> None:
        if message.recipient == INDEX_SERVER_ID:
            self.withdraw(message.sender, message.resource_id)

    def _on_join(self, peer: Optional[Peer], message: Message, context) -> None:
        if message.recipient == INDEX_SERVER_ID:
            self._server_heartbeats[message.sender] = self.simulator.now

    def _on_leave(self, peer: Optional[Peer], message: Message, context) -> None:
        if message.recipient == INDEX_SERVER_ID:
            self._server_heartbeats.pop(message.sender, None)

    def _on_ping(self, peer: Optional[Peer], message: Message, context) -> None:
        """A keepalive heartbeat at the server.  Napster-style: the
        server does not acknowledge — silence is only ever fatal in the
        other direction (the server expiring a silent peer)."""
        if message.recipient == INDEX_SERVER_ID:
            self._server_heartbeats[message.sender] = self.simulator.now

    # ------------------------------------------------------------------
    # Live-membership lifecycle
    # ------------------------------------------------------------------
    def _on_peer_joined_live(self, peer: Peer) -> None:
        """A joining peer announces itself and re-uploads its metadata.

        The server may still hold this peer's registrations (it came
        back inside the staleness window) — re-registering is
        idempotent, and costs the full upload either way, which is the
        maintenance price the centralized organisation pays for churn.
        """
        # JOIN and the re-uploads are the traffic this peer's whole
        # visibility rides on — reliable delivery retries them.
        self.send_reliable(join_message(peer.peer_id, INDEX_SERVER_ID))
        for stored in peer.repository.documents:
            metadata = stored.metadata
            metadata_bytes = metadata_wire_bytes(metadata)
            self.send_reliable(register_message(
                peer.peer_id, INDEX_SERVER_ID, community_id=stored.community_id,
                resource_id=stored.resource_id, metadata_bytes=metadata_bytes,
                payload_object=(dict(metadata), stored.title)))

    def _announce_departure_live(self, peer: Peer) -> None:
        for stored in peer.repository.documents:
            self.kernel.send(unregister_message(peer.peer_id, INDEX_SERVER_ID,
                                                resource_id=stored.resource_id))
        self.kernel.send(leave_message(peer.peer_id, INDEX_SERVER_ID))

    def _on_maintenance_tick(self, now: float) -> None:
        """One maintenance round: every online peer heartbeats the
        server; the server expires peers silent beyond the lease and
        purges their registrations, paying the staleness window."""
        for peer_id in sorted(self.peers):
            if self.peers[peer_id].online:
                self.kernel.send(ping_message(peer_id, INDEX_SERVER_ID))
        deadline = now - self.heartbeat_lease_ms
        expired = {pid for pid, heard in self._server_heartbeats.items()
                   if heard <= deadline}
        if not expired:
            return
        for peer_id in sorted(expired):
            del self._server_heartbeats[peer_id]
        # One catalog pass for the whole expiry batch, however many
        # peers lapsed together.
        for resource_id in list(self._catalog):
            for peer_id in sorted(expired & self._catalog[resource_id].providers):
                self._note_staleness(peer_id, now)
                self.withdraw(peer_id, resource_id)

    def _stamp_freshness(self, now: float) -> None:
        # Every peer gets a clock — including ones offline right now —
        # so registrations left by a peer that departed before go-live
        # still decay at the lease instead of persisting forever.
        self._server_heartbeats = {peer_id: now for peer_id in sorted(self.peers)}

    def believed_online(self) -> list[str]:
        """Peers the server currently believes alive (live mode)."""
        return sorted(self._server_heartbeats)

    # ------------------------------------------------------------------
    # Churn hooks: the catalog keeps entries of offline peers but search
    # filters them out; a peer that is removed permanently is withdrawn.
    # ------------------------------------------------------------------
    def _on_peer_removed(self, peer: Peer) -> None:
        for resource_id in list(self._catalog):
            self.withdraw(peer.peer_id, resource_id)

    # ------------------------------------------------------------------
    def catalog_size(self) -> int:
        """Number of distinct objects known to the server."""
        return len(self._catalog)

    def provider_count(self, resource_id: str) -> int:
        """How many peers currently provide ``resource_id`` (replication)."""
        entry = self._catalog.get(resource_id)
        if entry is None:
            return 0
        return sum(
            1 for provider in entry.providers
            if provider in self.peers and self.peers[provider].online
        )
