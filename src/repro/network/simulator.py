"""A small discrete-event simulator for the peer-to-peer substrate.

The simulator provides a virtual clock, an event queue and a latency
model between peers.  Protocols use it in two ways:

* *event style* — schedule callbacks (used by the churn model and by
  periodic maintenance such as super-peer re-election), then ``run``;
* *accounting style* — ask for link latencies while executing a search
  synchronously, accumulating the virtual time a real deployment would
  have spent.

Both styles share the same clock, so experiments can mix churn events
with query workloads.
"""

from __future__ import annotations

import heapq
import itertools
import random
from typing import Callable, Optional

# Heap entries are plain lists ``[time, sequence, callback, args]`` so
# the heap compares (time, sequence) with C-level float/int comparisons
# — the callback slot is never reached.  A cancelled entry has its
# callback replaced by ``None`` and is skipped on pop.
_TIME, _SEQUENCE, _CALLBACK, _ARGS = 0, 1, 2, 3


class SimulationTruncated(RuntimeError):
    """``run(max_events=...)`` hit its event cap with work still eligible.

    A capped run that stops silently is indistinguishable from a
    completed one — under fault injection that would let a starved run
    masquerade as a finished scenario — so hitting the cap with
    eligible events still queued raises instead.  ``processed`` carries
    how many events ran before the cap.
    """

    def __init__(self, message: str, *, processed: int) -> None:
        super().__init__(message)
        self.processed = processed


class EventHandle:
    """Handle returned by :meth:`NetworkSimulator.schedule`; allows cancelling."""

    __slots__ = ("_entry",)

    def __init__(self, entry: list) -> None:
        self._entry = entry

    def cancel(self) -> None:
        self._entry[_CALLBACK] = None

    @property
    def time(self) -> float:
        return self._entry[_TIME]


class LatencyModel:
    """Pairwise link latency: a base plus deterministic per-pair jitter.

    Latencies are symmetric and stable for a given seed, so repeated
    searches over the same path cost the same virtual time.
    """

    def __init__(self, *, base_ms: float = 20.0, jitter_ms: float = 30.0, seed: int = 0) -> None:
        if base_ms < 0 or jitter_ms < 0:
            raise ValueError("latencies must be non-negative")
        self.base_ms = base_ms
        self.jitter_ms = jitter_ms
        self._seed = seed
        self._cache: dict[tuple[str, str], float] = {}

    def latency(self, source: str, target: str) -> float:
        """Latency in milliseconds of the link ``source`` ↔ ``target``."""
        if source == target:
            return 0.0
        cached = self._cache.get((source, target))
        if cached is None:
            ordered = (source, target) if source <= target else (target, source)
            rng = random.Random(f"{self._seed}:{ordered[0]}:{ordered[1]}")
            cached = self.base_ms + rng.random() * self.jitter_ms
            # Cache both directions so the symmetric hit path skips the
            # ordering comparison entirely.
            self._cache[(source, target)] = cached
            self._cache[(target, source)] = cached
        return cached


class NetworkSimulator:
    """Virtual clock + event queue + latency model."""

    def __init__(self, *, latency: Optional[LatencyModel] = None, seed: int = 0) -> None:
        self.latency_model = latency or LatencyModel(seed=seed)
        self.random = random.Random(seed)
        self._now = 0.0
        self._queue: list[list] = []
        self._sequence = itertools.count()
        self.events_processed = 0

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in milliseconds."""
        return self._now

    def schedule(self, delay_ms: float, callback: Callable[..., None],
                 *args) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay_ms`` from now.

        Passing ``args`` here instead of closing over them avoids one
        closure allocation per scheduled message on the kernel hot path.
        """
        if delay_ms < 0:
            raise ValueError("cannot schedule events in the past")
        entry = [self._now + delay_ms, next(self._sequence), callback, args]
        heapq.heappush(self._queue, entry)
        return EventHandle(entry)

    def post(self, delay_ms: float, callback: Callable[..., None], *args) -> None:
        """Fire-and-forget :meth:`schedule` for the kernel hot path.

        No :class:`EventHandle` is allocated and no negative-delay check
        runs — callers pass link latencies, which are non-negative by
        construction.  One list allocation per posted message.
        """
        heapq.heappush(self._queue,
                       [self._now + delay_ms, next(self._sequence), callback, args])

    def post_keyed(self, key: str, delay_ms: float,
                   callback: Callable[..., None], *args) -> None:
        """:meth:`post` with a shard-affinity hint.

        ``key`` names the node whose home shard should execute the
        event (recurring per-peer maintenance timers pass their peer
        id).  The single-queue simulator has no shards, so the hint is
        ignored here; :class:`repro.engine.sharded.ShardedSimulator`
        overrides this to queue the event on the key's shard.
        """
        heapq.heappush(self._queue,
                       [self._now + delay_ms, next(self._sequence), callback, args])

    def schedule_at(self, time_ms: float, callback: Callable[..., None],
                    *args) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute virtual time ``time_ms``."""
        return self.schedule(max(0.0, time_ms - self._now), callback, *args)

    def run(self, until_ms: Optional[float] = None, *, max_events: int = 1_000_000) -> int:
        """Process events until the queue is empty or ``until_ms`` is reached.

        Returns the number of events processed in this call.  Hitting
        ``max_events`` with eligible events still queued raises
        :class:`SimulationTruncated` — a capped run must never
        masquerade as a completed one.
        """
        processed = 0
        while self._queue and processed < max_events:
            if until_ms is not None and self._queue[0][_TIME] > until_ms:
                break
            entry = heapq.heappop(self._queue)
            callback = entry[_CALLBACK]
            if callback is None:
                continue
            time = entry[_TIME]
            if time > self._now:
                self._now = time
            callback(*entry[_ARGS])
            processed += 1
            self.events_processed += 1
        if processed >= max_events and self._has_eligible(until_ms):
            raise SimulationTruncated(
                f"run() hit max_events={max_events} with eligible events still "
                f"queued at t={self._now:.3f}ms", processed=processed)
        if until_ms is not None and self._now < until_ms:
            self._now = until_ms
        return processed

    def _has_eligible(self, until_ms: Optional[float]) -> bool:
        """Any live queued event within the ``until_ms`` horizon?

        Runs only on the cap-hit error path, so the linear scan over
        the heap costs nothing in normal operation.
        """
        for entry in self._queue:
            if entry[_CALLBACK] is not None and (
                    until_ms is None or entry[_TIME] <= until_ms):
                return True
        return False

    def step(self) -> bool:
        """Process exactly one pending event (skipping cancelled ones).

        Returns ``True`` if an event ran, ``False`` if the queue was
        empty.  The event kernel uses this to drain the queue only as
        far as a query's completion, leaving later events (churn chains,
        other queries) in place.
        """
        queue = self._queue
        pop = heapq.heappop
        while queue:
            entry = pop(queue)
            callback = entry[2]
            if callback is None:
                continue
            time = entry[0]
            if time > self._now:
                self._now = time
            callback(*entry[3])
            self.events_processed += 1
            return True
        return False

    def advance(self, delta_ms: float) -> None:
        """Advance the clock without processing events (accounting style)."""
        if delta_ms < 0:
            raise ValueError("time cannot move backwards")
        self._now += delta_ms

    def align_exit_clock(self, time_ms: float) -> None:
        """Hook for process-parallel workers (see ``engine/parallel.py``).

        A serial drive loop exits with ``now`` equal to the settling
        event's time already, so this is a no-op here; a parallel worker
        may have executed past (or stopped short of) that event inside
        its window and pins its clock to the canonical exit time."""

    def pending_events(self) -> int:
        return sum(1 for entry in self._queue if entry[_CALLBACK] is not None)

    # ------------------------------------------------------------------
    def link_latency(self, source: str, target: str) -> float:
        """Latency of one link, in virtual milliseconds."""
        return self.latency_model.latency(source, target)

    def transfer_time(self, source: str, target: str, size_bytes: int, *, bandwidth_kbps: float = 512.0) -> float:
        """Virtual time to move ``size_bytes`` across one link."""
        if bandwidth_kbps <= 0:
            raise ValueError("bandwidth must be positive")
        transmission_ms = (size_bytes * 8) / (bandwidth_kbps * 1000) * 1000
        return self.link_latency(source, target) + transmission_ms
