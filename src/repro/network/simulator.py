"""A small discrete-event simulator for the peer-to-peer substrate.

The simulator provides a virtual clock, an event queue and a latency
model between peers.  Protocols use it in two ways:

* *event style* — schedule callbacks (used by the churn model and by
  periodic maintenance such as super-peer re-election), then ``run``;
* *accounting style* — ask for link latencies while executing a search
  synchronously, accumulating the virtual time a real deployment would
  have spent.

Both styles share the same clock, so experiments can mix churn events
with query workloads.
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass, field
from typing import Callable, Optional


@dataclass(order=True)
class _ScheduledEvent:
    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Handle returned by :meth:`NetworkSimulator.schedule`; allows cancelling."""

    def __init__(self, event: _ScheduledEvent) -> None:
        self._event = event

    def cancel(self) -> None:
        self._event.cancelled = True

    @property
    def time(self) -> float:
        return self._event.time


class LatencyModel:
    """Pairwise link latency: a base plus deterministic per-pair jitter.

    Latencies are symmetric and stable for a given seed, so repeated
    searches over the same path cost the same virtual time.
    """

    def __init__(self, *, base_ms: float = 20.0, jitter_ms: float = 30.0, seed: int = 0) -> None:
        if base_ms < 0 or jitter_ms < 0:
            raise ValueError("latencies must be non-negative")
        self.base_ms = base_ms
        self.jitter_ms = jitter_ms
        self._seed = seed
        self._cache: dict[tuple[str, str], float] = {}

    def latency(self, source: str, target: str) -> float:
        """Latency in milliseconds of the link ``source`` ↔ ``target``."""
        if source == target:
            return 0.0
        key = (source, target) if source <= target else (target, source)
        cached = self._cache.get(key)
        if cached is None:
            rng = random.Random(f"{self._seed}:{key[0]}:{key[1]}")
            cached = self.base_ms + rng.random() * self.jitter_ms
            self._cache[key] = cached
        return cached


class NetworkSimulator:
    """Virtual clock + event queue + latency model."""

    def __init__(self, *, latency: Optional[LatencyModel] = None, seed: int = 0) -> None:
        self.latency_model = latency or LatencyModel(seed=seed)
        self.random = random.Random(seed)
        self._now = 0.0
        self._queue: list[_ScheduledEvent] = []
        self._sequence = itertools.count()
        self.events_processed = 0

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in milliseconds."""
        return self._now

    def schedule(self, delay_ms: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to run ``delay_ms`` from now."""
        if delay_ms < 0:
            raise ValueError("cannot schedule events in the past")
        event = _ScheduledEvent(self._now + delay_ms, next(self._sequence), callback)
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def schedule_at(self, time_ms: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at absolute virtual time ``time_ms``."""
        return self.schedule(max(0.0, time_ms - self._now), callback)

    def run(self, until_ms: Optional[float] = None, *, max_events: int = 1_000_000) -> int:
        """Process events until the queue is empty or ``until_ms`` is reached.

        Returns the number of events processed in this call.
        """
        processed = 0
        while self._queue and processed < max_events:
            if until_ms is not None and self._queue[0].time > until_ms:
                break
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = max(self._now, event.time)
            event.callback()
            processed += 1
            self.events_processed += 1
        if until_ms is not None and self._now < until_ms:
            self._now = until_ms
        return processed

    def step(self) -> bool:
        """Process exactly one pending event (skipping cancelled ones).

        Returns ``True`` if an event ran, ``False`` if the queue was
        empty.  The event kernel uses this to drain the queue only as
        far as a query's completion, leaving later events (churn chains,
        other queries) in place.
        """
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = max(self._now, event.time)
            event.callback()
            self.events_processed += 1
            return True
        return False

    def advance(self, delta_ms: float) -> None:
        """Advance the clock without processing events (accounting style)."""
        if delta_ms < 0:
            raise ValueError("time cannot move backwards")
        self._now += delta_ms

    def pending_events(self) -> int:
        return sum(1 for event in self._queue if not event.cancelled)

    # ------------------------------------------------------------------
    def link_latency(self, source: str, target: str) -> float:
        """Latency of one link, in virtual milliseconds."""
        return self.latency_model.latency(source, target)

    def transfer_time(self, source: str, target: str, size_bytes: int, *, bandwidth_kbps: float = 512.0) -> float:
        """Virtual time to move ``size_bytes`` across one link."""
        if bandwidth_kbps <= 0:
            raise ValueError("bandwidth must be positive")
        transmission_ms = (size_bytes * 8) / (bandwidth_kbps * 1000) * 1000
        return self.link_latency(source, target) + transmission_ms
