"""The peer: a network participant with its local repository."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.storage.repository import LocalRepository


@dataclass
class Peer:
    """One participant in the peer-to-peer network.

    A peer owns a :class:`~repro.storage.repository.LocalRepository`
    (its shared objects and local index), a set of neighbour links
    (meaningful for the decentralized organisations) and an online
    flag toggled by the membership layer.  ``uptime_ms`` accumulates
    completed online-session time at each offline transition;
    ``online_since`` stamps the start of the current session.  In
    live-membership mode ``last_pong_ms`` tracks when each counterpart
    (a neighbour, or the peer's super/rendezvous) last answered a
    heartbeat: *silence detection* is belief-based.  Repair *targeting*
    may still consult the connection layer (a dial to a dead candidate
    fails fast, like a refused TCP connect) — see the Membership
    section of ARCHITECTURE.md for where each shortcut is taken.
    """

    peer_id: str
    repository: LocalRepository = field(default_factory=LocalRepository)
    neighbors: set[str] = field(default_factory=set)
    online: bool = True
    is_super_peer: bool = False
    super_peer_id: Optional[str] = None
    joined_communities: set[str] = field(default_factory=set)
    uptime_ms: float = 0.0
    online_since: float = 0.0
    last_departed_ms: float = -1.0
    last_pong_ms: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.peer_id:
            raise ValueError("a peer needs a non-empty id")
        if not self.repository.owner:
            self.repository.owner = self.peer_id

    # ------------------------------------------------------------------
    def connect(self, other_id: str) -> None:
        """Add a neighbour link (undirected links are added on both ends
        by the network, not here)."""
        if other_id != self.peer_id:
            self.neighbors.add(other_id)

    def disconnect(self, other_id: str) -> None:
        self.neighbors.discard(other_id)

    def join_community(self, community_id: str) -> None:
        self.joined_communities.add(community_id)

    def leave_community(self, community_id: str) -> None:
        self.joined_communities.discard(community_id)

    def is_member_of(self, community_id: str) -> bool:
        return community_id in self.joined_communities

    def shared_object_count(self) -> int:
        return len(self.repository.documents)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        role = "super" if self.is_super_peer else "leaf"
        status = "online" if self.online else "offline"
        return f"<Peer {self.peer_id} {role} {status} objects={self.shared_object_count()}>"
