"""JXTA-style rendezvous network organisation (paper §VI future work).

The paper proposes JXTA as a future network layer: peers publish
*advertisements* of their shared resources to rendezvous peers, and
queries are resolved by walking the rendezvous overlay.  The adapter
below models the parts that matter for U-P2P:

* a subset of peers act as **rendezvous peers** holding advertisement
  indexes for the edge peers attached to them;
* advertisements carry the object's searchable metadata and **expire**
  after a lease, so edge peers must re-publish periodically (the JXTA
  lease model) — stale objects disappear from search without any
  explicit withdrawal;
* queries go edge → rendezvous and then along a deterministic walk of
  the rendezvous ring (JXTA's rendezvous propagation), stopping early
  once enough results are found.

On the event kernel the walk is a chain of QUERY deliveries: each
rendezvous peer answers from its advertisement index when its copy
arrives, then relays a single copy to the next ring position — unless
enough results have accumulated or the walk budget is spent.  A
rendezvous peer that churns offline mid-walk drops the chain, ending
the walk early, which is exactly the fragility the lease/renewal model
is there to paper over.

Compared with :class:`~repro.network.superpeer.SuperPeerProtocol` the
interesting differences are the lease/expiry behaviour and the bounded
walk instead of a full broadcast.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Optional

from repro.engine.kernel import EventKernel, QueryContext
from repro.engine.local import local_matches
from repro.network.base import PeerNetwork, SearchResult
from repro.network.messages import (
    Message,
    MessageType,
    ad_renew_message,
    leaf_attach_message,
    leave_message,
    metadata_wire_bytes,
    query_hit_message,
    query_message,
    register_message,
)
from repro.network.peers import Peer
from repro.storage.index import AttributeIndex
from repro.storage.interning import intern_view
from repro.storage.query import Query


@dataclass
class Advertisement:
    """One advertised object replica held by a rendezvous peer.

    ``metadata_view`` (tuple-valued) and ``metadata_bytes`` are built
    once at publish time and shared by every search result generated
    from this advertisement — the walk never re-copies metadata.
    """

    resource_id: str
    community_id: str
    title: str
    metadata: dict[str, list[str]]
    provider_id: str
    expires_at_ms: float
    metadata_view: dict[str, tuple[str, ...]] = field(default_factory=dict)
    metadata_bytes: int = 0


@dataclass
class _RendezvousState:
    """Advertisement index of one rendezvous peer."""

    index: AttributeIndex = field(default_factory=AttributeIndex)
    advertisements: dict[str, Advertisement] = field(default_factory=dict)
    edges: set[str] = field(default_factory=set)


class RendezvousProtocol(PeerNetwork):
    """A JXTA-flavoured rendezvous/advertisement organisation."""

    protocol_name = "rendezvous"

    def __init__(self, *, rendezvous_ratio: float = 0.15, lease_ms: float = 30 * 60 * 1000.0,
                 walk_limit: Optional[int] = None, **kwargs) -> None:
        super().__init__(**kwargs)
        if not 0.0 < rendezvous_ratio <= 1.0:
            raise ValueError("rendezvous_ratio must be in (0, 1]")
        if lease_ms <= 0:
            raise ValueError("the advertisement lease must be positive")
        self.rendezvous_ratio = rendezvous_ratio
        self.lease_ms = lease_ms
        self.walk_limit = walk_limit
        self._states: dict[str, _RendezvousState] = {}
        #: live-membership renewal clocks: peer id -> virtual time it
        #: last re-advertised its objects
        self._last_renewed: dict[str, float] = {}

    def go_live(self) -> None:
        if self.lease_ms < 2 * self.maintenance_interval_ms:
            # Renewals fire at lease/2 but only when a tick runs; with a
            # shorter lease every ad would expire before its renewal.
            raise ValueError("the advertisement lease must cover at least "
                             "two maintenance intervals under live membership")
        super().go_live()

    # ------------------------------------------------------------------
    # Role assignment
    # ------------------------------------------------------------------
    def elect_rendezvous(self, count: Optional[int] = None) -> list[str]:
        """Promote peers to rendezvous and attach every edge peer."""
        online = self.online_peers()
        if not online:
            return []
        if count is None:
            count = max(1, round(len(online) * self.rendezvous_ratio))
        count = min(count, len(online))
        chosen = sorted(online, key=lambda peer: peer.peer_id)[:count]
        chosen_ids = {peer.peer_id for peer in chosen}
        self._states = {peer_id: self._states.get(peer_id, _RendezvousState())
                        for peer_id in sorted(chosen_ids)}
        for peer in self.peers.values():
            peer.is_super_peer = peer.peer_id in chosen_ids
            peer.super_peer_id = peer.peer_id if peer.is_super_peer else None
        for peer in self.online_peers():
            if not peer.is_super_peer:
                self._attach_edge(peer)
        return sorted(chosen_ids)

    def rendezvous_ids(self) -> list[str]:
        return sorted(self._states)

    def _attach_edge(self, peer: Peer) -> None:
        online = [peer_id for peer_id in self._states if self.peers[peer_id].online]
        if not online:
            peer.super_peer_id = None
            return
        # Deterministic assignment: a stable hash of the peer id picks
        # the rendezvous (crc32, not the salted builtin hash, so runs
        # agree across processes and CI).
        target = sorted(online)[zlib.crc32(peer.peer_id.encode("utf-8")) % len(online)]
        peer.super_peer_id = target
        self._states[target].edges.add(peer.peer_id)

    # ------------------------------------------------------------------
    # Churn hooks
    # ------------------------------------------------------------------
    def _on_peer_departed(self, peer: Peer) -> None:
        if peer.is_super_peer:
            state = self._states.pop(peer.peer_id, None)
            peer.is_super_peer = False
            if state is not None:
                # Sorted for reproducibility hygiene: today each edge's
                # new rendezvous is a crc32 hash of its own id, so the
                # outcome is order-independent, but a load-aware
                # _attach_edge would silently inherit set-salt order.
                for edge_id in sorted(state.edges):
                    edge = self.peers.get(edge_id)
                    if edge is not None and edge.online:
                        self._attach_edge(edge)
        elif peer.super_peer_id in self._states:
            self._states[peer.super_peer_id].edges.discard(peer.peer_id)

    def _on_peer_returned(self, peer: Peer) -> None:
        if not self._states:
            self.elect_rendezvous()
            return
        self._attach_edge(peer)

    def _on_peer_removed(self, peer: Peer) -> None:
        self._on_peer_departed(peer)

    # ------------------------------------------------------------------
    # Live membership: edges renew their advertisements on a timer (the
    # JXTA lease model as standing traffic), leases expire in recurring
    # sweeps instead of being pulled at search time, and an edge whose
    # rendezvous died re-homes — and re-advertises everything — at its
    # next renewal tick, which is the organic repair path.
    # ------------------------------------------------------------------
    def _on_peer_joined_live(self, peer: Peer) -> None:
        peer.is_super_peer = False
        peer.super_peer_id = None
        self._live_attach_edge(peer)

    def _on_peer_left_live(self, peer: Peer) -> None:
        if peer.is_super_peer:
            # The advertisement index lived in the departed rendezvous
            # peer's RAM and dies with it; edges notice at their next
            # renewal tick and re-home.
            self._states.pop(peer.peer_id, None)
            peer.is_super_peer = False

    def _announce_departure_live(self, peer: Peer) -> None:
        if not peer.is_super_peer and peer.super_peer_id in self._states:
            self.kernel.send(leave_message(peer.peer_id, peer.super_peer_id))

    def _live_attach_edge(self, peer: Peer) -> None:
        now = self.simulator.now
        online = sorted(rdv_id for rdv_id in self._states
                        if rdv_id in self.peers and self.peers[rdv_id].online)
        if not online:
            self._promote_rendezvous(peer)
            return
        target = online[zlib.crc32(peer.peer_id.encode("utf-8")) % len(online)]
        peer.super_peer_id = target
        # Attachment is the edge's whole visibility — reliable delivery
        # retries it (and the renewals below) under faults.
        self.send_reliable(leaf_attach_message(peer.peer_id, target))
        self._readvertise(peer, target)
        self._last_renewed[peer.peer_id] = now

    def _promote_rendezvous(self, peer: Peer) -> None:
        """Deterministic promotion: the edge that found no reachable
        rendezvous becomes one itself (maintenance iterates peers in
        sorted order, so the lowest-id orphan promotes first)."""
        peer.is_super_peer = True
        peer.super_peer_id = peer.peer_id
        self._states.setdefault(peer.peer_id, _RendezvousState())
        for stored in peer.repository.documents:
            metadata = stored.metadata
            metadata_bytes = metadata_wire_bytes(metadata)
            self._insert_advertisement(peer.peer_id, peer.peer_id,
                                       stored.community_id, stored.resource_id,
                                       metadata, stored.title, metadata_bytes)
        self._last_renewed[peer.peer_id] = self.simulator.now

    def _readvertise(self, peer: Peer, target: str) -> None:
        """Re-ship every shared object's advertisement (lease renewal)."""
        for stored in peer.repository.documents:
            metadata = stored.metadata
            metadata_bytes = metadata_wire_bytes(metadata)
            self.send_reliable(ad_renew_message(
                peer.peer_id, target, community_id=stored.community_id,
                resource_id=stored.resource_id, metadata_bytes=metadata_bytes,
                payload_object=(dict(metadata), stored.title)))

    def _on_maintenance_tick(self, now: float) -> None:
        renew_after = self.lease_ms / 2
        for peer_id in sorted(self.peers):
            peer = self.peers[peer_id]
            if not peer.online:
                continue
            if peer.is_super_peer and peer_id in self._states:
                # A rendezvous peer renews its *own* ads in place (it
                # holds its own index: no wire cost, like self-publish)
                # before sweeping — otherwise they would expire too.
                if now - self._last_renewed.get(peer_id, 0.0) >= renew_after:
                    state = self._states[peer_id]
                    for advertisement in state.advertisements.values():
                        if advertisement.provider_id == peer_id:
                            advertisement.expires_at_ms = now + self.lease_ms
                    self._last_renewed[peer_id] = now
                self._expire_at(peer_id, now)
                continue
            rendezvous_id = peer.super_peer_id
            if rendezvous_id is None or rendezvous_id not in self._states:
                # The edge's rendezvous is gone: re-home and repair.
                self._live_attach_edge(peer)
            elif now - self._last_renewed.get(peer_id, 0.0) >= renew_after:
                self._readvertise(peer, rendezvous_id)
                self._last_renewed[peer_id] = now

    def _expire_at(self, rendezvous_id: str, now: float) -> None:
        """Sweep one rendezvous peer's expired advertisements, paying
        the staleness window for ads whose provider already departed."""
        state = self._states[rendezvous_id]
        dead = [key for key, advertisement in state.advertisements.items()
                if advertisement.expires_at_ms <= now]
        for key in dead:
            self._note_staleness(state.advertisements[key].provider_id, now)
            state.index.remove(key)
            del state.advertisements[key]

    def _stamp_freshness(self, now: float) -> None:
        self._last_renewed = {peer_id: now for peer_id in sorted(self.peers)}

    # ------------------------------------------------------------------
    # Live-membership handlers
    # ------------------------------------------------------------------
    def _on_ad_upload(self, peer: Optional[Peer], message: Message, context) -> None:
        """A REGISTER (first publication) or AD-RENEW (lease renewal)
        arrived at a rendezvous peer: (re)insert the advertisement with
        a fresh lease starting now.  A recipient that stopped being a
        rendezvous loses the upload — the sender re-homes at its next
        renewal tick."""
        if peer is None or message.payload_object is None:
            return
        if peer.peer_id not in self._states:
            return
        metadata, title = message.payload_object
        self.stats.record_registration()
        self._insert_advertisement(peer.peer_id, message.sender,
                                   message.community_id, message.resource_id,
                                   metadata, title, message.payload_bytes)

    def _on_leaf_attach(self, peer: Optional[Peer], message: Message, context) -> None:
        if peer is not None and peer.peer_id in self._states:
            self._states[peer.peer_id].edges.add(message.sender)

    def _on_leave(self, peer: Optional[Peer], message: Message, context) -> None:
        """A graceful goodbye: drop the sender's advertisements now
        instead of letting them decay through lease expiry."""
        if peer is None or peer.peer_id not in self._states:
            return
        state = self._states[peer.peer_id]
        state.edges.discard(message.sender)
        gone = [key for key, advertisement in state.advertisements.items()
                if advertisement.provider_id == message.sender]
        for key in gone:
            state.index.remove(key)
            del state.advertisements[key]

    # ------------------------------------------------------------------
    # Primitives
    # ------------------------------------------------------------------
    def publish(self, peer_id: str, community_id: str, resource_id: str,
                metadata: dict[str, list[str]], *, title: str = "") -> None:
        """Publish an advertisement with a lease to the peer's rendezvous."""
        peer = self._require_peer(peer_id)
        self.replicas.note_original(resource_id, peer_id, at_ms=self.simulator.now)
        if self.result_caching:
            # The publisher's own cached answers predate the new object;
            # other edges' caches are bounded by the TTL/lease instead.
            cache = self._peer_caches.get(peer_id)
            if cache is not None:
                cache.bump_version()
        if self.live_membership:
            self._publish_live(peer, community_id, resource_id, metadata, title)
            return
        if not self._states:
            self.elect_rendezvous()
        target = peer.peer_id if peer.is_super_peer else peer.super_peer_id
        if target is None or target not in self._states:
            self._attach_edge(peer)
            target = peer.super_peer_id
        if target is None:
            return
        metadata_bytes = metadata_wire_bytes(metadata)
        if peer_id != target:
            message = register_message(peer_id, target, community_id=community_id,
                                       resource_id=resource_id, metadata_bytes=metadata_bytes)
            self._account(message)
            self.stats.record_registration()
        self._insert_advertisement(target, peer_id, community_id, resource_id,
                                   metadata, title, metadata_bytes)

    def _insert_advertisement(self, rendezvous_id: str, provider_id: str,
                              community_id: str, resource_id: str,
                              metadata: dict[str, list[str]], title: str,
                              metadata_bytes: int) -> None:
        state = self._states[rendezvous_id]
        key = f"{resource_id}@{provider_id}"
        state.advertisements[key] = Advertisement(
            resource_id=resource_id,
            community_id=community_id,
            title=title,
            metadata=dict(metadata),
            provider_id=provider_id,
            expires_at_ms=self.simulator.now + self.lease_ms,
            metadata_view=intern_view(metadata),
            metadata_bytes=metadata_bytes,
        )
        state.index.add(community_id, key, metadata)

    def _publish_live(self, peer: Peer, community_id: str, resource_id: str,
                      metadata: dict[str, list[str]], title: str) -> None:
        """Live publication: a rendezvous peer indexes its own ad for
        free; an edge ships the advertisement as a REGISTER whose lease
        starts when it *arrives*.  An orphaned edge publishes nothing —
        its next renewal tick re-homes it and re-advertises."""
        metadata_bytes = metadata_wire_bytes(metadata)
        if peer.is_super_peer and peer.peer_id in self._states:
            self._insert_advertisement(peer.peer_id, peer.peer_id, community_id,
                                       resource_id, metadata, title, metadata_bytes)
            return
        target = peer.super_peer_id
        if target is None:
            return
        self.send_reliable(register_message(
            peer.peer_id, target, community_id=community_id,
            resource_id=resource_id, metadata_bytes=metadata_bytes,
            payload_object=(dict(metadata), title)))

    def renew(self, peer_id: str) -> int:
        """Re-advertise every object a peer shares (lease renewal).

        Returns the number of advertisements renewed.
        """
        peer = self._require_peer(peer_id)
        renewed = 0
        for stored in peer.repository.documents:
            self.publish(peer_id, stored.community_id, stored.resource_id,
                         dict(stored.metadata), title=stored.title)
            renewed += 1
        return renewed

    def expire_advertisements(self) -> int:
        """Drop expired advertisements everywhere; returns how many died."""
        expired = 0
        now = self.simulator.now
        for state in self._states.values():
            dead = [key for key, advertisement in state.advertisements.items()
                    if advertisement.expires_at_ms <= now]
            for key in dead:
                state.index.remove(key)
                del state.advertisements[key]
                expired += 1
        return expired

    def start_search(self, origin_id: str, query: Query, *, max_results: int = 100,
                     **kwargs) -> QueryContext:
        origin = self._require_peer(origin_id)
        if not self._states and not self.live_membership:
            self.elect_rendezvous()
        if not self.live_membership:
            # Off-mode lease handling is a pull at search time; in live
            # mode expiry happens only in the recurring sweep, so a
            # search between sweeps can still see (and pay for) stale
            # advertisements.
            self.expire_advertisements()
        context = self.new_context(
            origin_id, query, max_results=max_results,
            query_id=query.query_id or f"rdv-{self.next_query_number()}",
        )
        if self.result_caching:
            cache = self._peer_cache(origin_id)
            cached = (cache.get(self._context_cache_key(context), self.simulator.now)
                      if cache is not None else None)
            if cached is not None:
                # The edge re-asked a query whose walk it recently paid
                # for: the cached set returns with zero messages.
                self._serve_cached_locally(context, cached)
                self.kernel.finish_if_idle(context)
                return context
            self.stats.record_cache_miss()
        wire_xml, wire_bytes = self.wire_form(query, context.plan)
        context.extra["query_xml"] = wire_xml
        context.extra["query_bytes"] = wire_bytes

        for stored in local_matches(origin.repository, query, plan=context.plan,
                                    limit=max_results):
            context.add_result(SearchResult.from_stored(origin_id, stored, hops=0))

        entry = origin.peer_id if origin.is_super_peer else origin.super_peer_id
        if entry is None or entry not in self._states:
            if self.live_membership:
                # An orphaned edge answers locally only until its next
                # renewal tick re-homes it.
                entry = None
            else:
                self._attach_edge(origin)
                entry = origin.super_peer_id
        if entry is None:
            self.kernel.finish_if_idle(context)
            return context

        # The walk order is fixed at submission: the ring of online
        # rendezvous peers, rotated to start at the entry point.
        ring = sorted(peer_id for peer_id in self._states if self.peers[peer_id].online)
        if entry in ring:
            start = ring.index(entry)
            ordered = ring[start:] + ring[:start]
        else:
            ordered = ring
        limit = self.walk_limit if self.walk_limit is not None else len(ordered)
        walk = ordered[:limit]
        context.extra["walk"] = walk
        if not walk:
            self.kernel.finish_if_idle(context)
            return context

        hop_to_entry = 0 if origin.is_super_peer else 1
        context.extra["hop_to_entry"] = hop_to_entry
        if hop_to_entry:
            message = query_message(origin_id, walk[0], wire_xml,
                                    community_id=query.community_id,
                                    payload_bytes=wire_bytes)
            message.hops = hop_to_entry
            self.kernel.send(message, context=context)
        else:
            self._answer_at_rendezvous(origin, hops=0, context=context)
        self.kernel.finish_if_idle(context)
        return context

    # ------------------------------------------------------------------
    # Message handlers
    # ------------------------------------------------------------------
    def _register_handlers(self, kernel: EventKernel) -> None:
        super()._register_handlers(kernel)
        kernel.register(MessageType.QUERY, self._on_query)
        kernel.register(MessageType.REGISTER, self._on_ad_upload)
        kernel.register(MessageType.AD_RENEW, self._on_ad_upload)
        kernel.register(MessageType.LEAF_ATTACH, self._on_leaf_attach)
        kernel.register(MessageType.LEAVE, self._on_leave)

    def _on_query(self, peer: Optional[Peer], message: Message,
                  context: Optional[QueryContext]) -> None:
        if peer is None or context is None:
            return
        self._answer_at_rendezvous(peer, hops=message.hops, context=context)

    def _answer_at_rendezvous(self, peer: Peer, *, hops: int, context: QueryContext) -> None:
        """One walk step: answer from this rendezvous, relay to the next.

        Results ride the QUERY-HIT and count only on arrival at the
        origin; their room is claimed here so the walk stops at the
        same point it would if hits were instantaneous."""
        context.peers_probed += 1
        results, metadata_bytes = self._collect_results(peer.peer_id, context, hops)
        if results:
            context.claim(len(results))
            hit = query_hit_message(peer.peer_id, context.origin_id, result_count=len(results),
                                    metadata_bytes=metadata_bytes,
                                    message_id=f"rdv-{len(self.stats.queries)}")
            hit.carried_results = tuple(results)
            self.kernel.send(hit, context=context,
                             latency_ms=self.simulator.now - context.started_at)
        walk: list[str] = context.extra["walk"]
        position = hops - context.extra.get("hop_to_entry", 0)
        if context.room() <= 0 or position + 1 >= len(walk):
            return
        relay = query_message(peer.peer_id, walk[position + 1], context.extra["query_xml"],
                              community_id=context.query.community_id,
                              payload_bytes=context.extra["query_bytes"])
        relay.hops = hops + 1
        self.kernel.send(relay, context=context)

    # ------------------------------------------------------------------
    def _collect_results(self, rendezvous_id: str, context: QueryContext,
                         hops: int) -> tuple[list[SearchResult], int]:
        """Matching results at one rendezvous plus their metadata bytes
        (summed from the per-advertisement counts measured at publish)."""
        state = self._states.get(rendezvous_id)
        if state is None:
            return [], 0
        evaluator = context.plan if context.plan is not None else context.query
        if evaluator.is_empty:
            keys = sorted(key for key, advertisement in state.advertisements.items()
                          if advertisement.community_id == evaluator.community_id)
        else:
            keys = sorted(evaluator.evaluate(state.index))
        results: list[SearchResult] = []
        metadata_bytes = 0
        room = context.room()
        for key in keys:
            advertisement = state.advertisements.get(key)
            if advertisement is None:
                continue
            provider = self.peers.get(advertisement.provider_id)
            if provider is None or not provider.online \
                    or advertisement.provider_id == context.origin_id:
                continue
            results.append(SearchResult(
                provider_id=advertisement.provider_id,
                resource_id=advertisement.resource_id,
                community_id=advertisement.community_id,
                title=advertisement.title,
                metadata=advertisement.metadata_view,
                hops=hops + 1,
            ))
            metadata_bytes += advertisement.metadata_bytes
            if len(results) >= room:
                break
        return results, metadata_bytes

    def _cache_store(self, context: QueryContext, response) -> None:
        """The origin edge caches its finished response.  Entry lifetime
        is additionally capped at one advertisement lease from the fill:
        an advertisement serving the response had at most that much
        life left, so a cached answer can outlive any individual ad by
        at most one lease period (within the TTL bound as always)."""
        self._store_response_at(self._peer_cache(context.origin_id), context, response,
                                lease_ms=self.lease_ms)

    def advertisement_count(self) -> int:
        """Live advertisements across all rendezvous peers."""
        return sum(len(state.advertisements) for state in self._states.values())
