"""Gnutella-style flooding network organisation.

Queries are flooded along the overlay with a TTL and duplicate
suppression; every peer evaluates the query against its own local
repository and routes hits back along the reverse path, exactly the
Gnutella 0.4 behaviour the paper refers to.  Publishing costs no
messages (objects stay local until somebody downloads them), which is
the trade-off against the centralized organisation that experiment E3
quantifies.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.network.base import PeerNetwork, SearchResponse, SearchResult
from repro.network.messages import query_hit_message, query_message
from repro.network.peers import Peer
from repro.network.stats import QueryRecord
from repro.network.topology import Topology, build_topology
from repro.storage.query import Query


class GnutellaProtocol(PeerNetwork):
    """TTL-scoped query flooding over an unstructured overlay."""

    protocol_name = "gnutella"

    def __init__(self, *, default_ttl: int = 7, topology_kind: str = "power-law",
                 degree: int = 4, seed: int = 0, **kwargs) -> None:
        super().__init__(seed=seed, **kwargs)
        if default_ttl < 1:
            raise ValueError("TTL must be at least 1")
        self.default_ttl = default_ttl
        self.topology_kind = topology_kind
        self.degree = degree
        self._seed = seed
        self.topology = Topology()

    # ------------------------------------------------------------------
    # Overlay maintenance
    # ------------------------------------------------------------------
    def build_overlay(self) -> None:
        """(Re)build the neighbour graph over the current peer set."""
        self.topology = build_topology(
            self.peers, kind=self.topology_kind, degree=self.degree, seed=self._seed
        )
        for peer in self.peers.values():
            peer.neighbors = set(self.topology.neighbors(peer.peer_id))

    def _on_peer_added(self, peer: Peer) -> None:
        # Attach the newcomer to a few random online peers; experiments
        # that want a specific topology call build_overlay() afterwards.
        others = [candidate for candidate in self.online_peers() if candidate.peer_id != peer.peer_id]
        if not others:
            return
        sample_size = min(self.degree, len(others))
        for neighbor in self.simulator.random.sample(others, sample_size):
            self.topology.add_edge(peer.peer_id, neighbor.peer_id)
            peer.connect(neighbor.peer_id)
            neighbor.connect(peer.peer_id)

    def _on_peer_removed(self, peer: Peer) -> None:
        self.topology.remove_peer(peer.peer_id)
        for other in self.peers.values():
            other.disconnect(peer.peer_id)

    # ------------------------------------------------------------------
    # Primitives
    # ------------------------------------------------------------------
    def publish(self, peer_id: str, community_id: str, resource_id: str,
                metadata: dict[str, list[str]], *, title: str = "") -> None:
        """Publishing is free in Gnutella: the object simply sits in the
        peer's repository waiting for queries to reach it."""
        self._require_peer(peer_id)

    def search(self, origin_id: str, query: Query, *, max_results: int = 100,
               ttl: Optional[int] = None) -> SearchResponse:
        origin = self._require_peer(origin_id)
        ttl = ttl if ttl is not None else self.default_ttl
        response = SearchResponse(query=query)
        query_xml = query.to_xml_text()

        # Breadth-first flood with duplicate suppression.  arrival[peer]
        # is the virtual time the query reached that peer; hops[peer] the
        # hop count, used for latency and horizon accounting.
        visited: set[str] = {origin_id}
        arrival: dict[str, float] = {origin_id: 0.0}
        hops: dict[str, int] = {origin_id: 0}
        queue: deque[tuple[str, int]] = deque([(origin_id, ttl)])
        results: list[SearchResult] = []
        first_hit_hops: Optional[int] = None
        completion_time = 0.0

        # The origin searches its own repository first (no messages).
        local_hits = origin.repository.search(query)
        for stored in local_hits[:max_results]:
            results.append(SearchResult.from_stored(origin_id, stored, hops=0))
            first_hit_hops = 0

        while queue:
            current_id, remaining_ttl = queue.popleft()
            if remaining_ttl <= 0:
                continue
            current = self.peers.get(current_id)
            if current is None or not current.online:
                continue
            for neighbor_id in sorted(current.neighbors):
                neighbor = self.peers.get(neighbor_id)
                if neighbor is None or not neighbor.online:
                    continue
                message = query_message(current_id, neighbor_id, query_xml,
                                        ttl=remaining_ttl, community_id=query.community_id)
                message.hops = hops[current_id] + 1
                self._account(message)
                response.messages_sent += 1
                response.bytes_sent += message.size_bytes
                if neighbor_id in visited:
                    continue
                visited.add(neighbor_id)
                hops[neighbor_id] = hops[current_id] + 1
                arrival[neighbor_id] = (
                    arrival[current_id] + self.simulator.link_latency(current_id, neighbor_id)
                )
                queue.append((neighbor_id, remaining_ttl - 1))

                hits = neighbor.repository.search(query)
                if hits and len(results) < max_results:
                    taken = hits[: max_results - len(results)]
                    metadata_bytes = 0
                    for stored in taken:
                        result = SearchResult.from_stored(neighbor_id, stored, hops=hops[neighbor_id])
                        results.append(result)
                        metadata_bytes += result.metadata_bytes()
                    if first_hit_hops is None or hops[neighbor_id] < first_hit_hops:
                        first_hit_hops = hops[neighbor_id]
                    # The query hit travels back along the reverse path:
                    # one message per hop.
                    hit = query_hit_message(neighbor_id, origin_id, result_count=len(taken),
                                            metadata_bytes=metadata_bytes,
                                            message_id=message.message_id)
                    for _ in range(hops[neighbor_id]):
                        self._account(hit)
                        response.messages_sent += 1
                        response.bytes_sent += hit.size_bytes
                    completion_time = max(completion_time, 2 * arrival[neighbor_id])

        if not results:
            # Even with no hits the flood takes as long as its deepest probe.
            completion_time = max(arrival.values(), default=0.0)
        response.results = results
        response.peers_probed = len(visited) - 1
        response.latency_ms = completion_time
        self.simulator.advance(completion_time)
        self.stats.record_query(QueryRecord(
            query_id=query.query_id or f"flood-{len(self.stats.queries) + 1}",
            origin=origin_id,
            community_id=query.community_id,
            results=len(results),
            messages=response.messages_sent,
            bytes=response.bytes_sent,
            peers_probed=response.peers_probed,
            latency_ms=response.latency_ms,
            hops_to_first_result=first_hit_hops,
        ))
        return response

    # ------------------------------------------------------------------
    def reachable_peers(self, origin_id: str, ttl: Optional[int] = None) -> int:
        """How many online peers a flood from ``origin_id`` can reach."""
        ttl = ttl if ttl is not None else self.default_ttl
        visited = {origin_id}
        queue: deque[tuple[str, int]] = deque([(origin_id, ttl)])
        while queue:
            current_id, remaining = queue.popleft()
            if remaining <= 0:
                continue
            current = self.peers.get(current_id)
            if current is None or not current.online:
                continue
            for neighbor_id in current.neighbors:
                neighbor = self.peers.get(neighbor_id)
                if neighbor is None or not neighbor.online or neighbor_id in visited:
                    continue
                visited.add(neighbor_id)
                queue.append((neighbor_id, remaining - 1))
        return len(visited) - 1
