"""Gnutella-style flooding network organisation.

Queries are flooded along the overlay with a TTL and duplicate
suppression; every peer evaluates the query against its own local
index and routes hits back along the reverse path, exactly the
Gnutella 0.4 behaviour the paper refers to.  Publishing costs no
messages (objects stay local until somebody downloads them), which is
the trade-off against the centralized organisation that experiment E3
quantifies.

The flood is executed on the event kernel: the origin hands one QUERY
message per neighbour to the kernel; each delivery at a not-yet-visited
peer evaluates the query locally (attribute-index intersection),
schedules a QUERY-HIT back along the reverse path, and re-floods to its
own neighbours with the TTL decremented.  Deliveries at peers that
already saw the query — or that churned offline while the message is
in flight — are dropped, which is how duplicate suppression and
mid-query churn fall out of the message model instead of being special
cases of a graph walk.

Reliability stance: gnutella's traffic is *best-effort by design*, so
the ``reliable_delivery`` knob changes nothing here except downloads
(the shared DOWNLOAD-REQUEST envelope in the base class).  The flood's
redundancy — many paths, duplicate suppression — is its loss recovery:
under injected message loss a query hit can still arrive along another
path, and the duplicate-suppression ``visited`` set makes duplicated
QUERY deliveries harmless.  PING/PONG keepalives are likewise
unacknowledged; a lost heartbeat is indistinguishable from a dead
neighbour one lease later, exactly as in the real protocol.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.engine.kernel import EventKernel, MembershipContext, QueryContext
from repro.engine.local import local_matches
from repro.network.base import PeerNetwork, SearchResult
from repro.network.messages import (
    Message,
    MessageType,
    ping_message,
    pong_message,
    query_hit_message,
)
from repro.network.peers import Peer
from repro.network.routing import RoutingIndex
from repro.network.topology import Topology, build_topology
from repro.storage.plan import compile_query
from repro.storage.query import Query

#: sentinel distinguishing "probe keys not computed yet" from the
#: legitimate ``None`` of an unprobeable query
_KEYS_UNSET = object()


class GnutellaProtocol(PeerNetwork):
    """TTL-scoped query flooding over an unstructured overlay."""

    protocol_name = "gnutella"

    def __init__(self, *, default_ttl: int = 7, topology_kind: str = "power-law",
                 degree: int = 4, seed: int = 0, **kwargs) -> None:
        super().__init__(seed=seed, **kwargs)
        if default_ttl < 1:
            raise ValueError("TTL must be at least 1")
        self.default_ttl = default_ttl
        self.topology_kind = topology_kind
        self.degree = degree
        self._seed = seed
        self.topology = Topology()
        # peer id -> its neighbour ids in flood order, cached because a
        # flood re-visits the same adjacency for every in-flight query;
        # invalidated whenever the overlay changes (churn only toggles
        # the online flag, which is checked at send time).
        self._flood_order: dict[str, list[str]] = {}
        #: per-neighbour attenuated Bloom filters (``informed_routing``
        #: knob); ``None`` keeps the blind flood untouched on the hot path
        self._routing: Optional[RoutingIndex] = None
        if self.informed_routing:
            self._routing = RoutingIndex(
                self, filter_bits=self.routing_filter_bits,
                hash_count=self.routing_hash_count, depth=self.routing_depth)

    # ------------------------------------------------------------------
    # Overlay maintenance
    # ------------------------------------------------------------------
    def build_overlay(self) -> None:
        """(Re)build the neighbour graph over the current peer set."""
        self.topology = build_topology(
            self.peers, kind=self.topology_kind, degree=self.degree, seed=self._seed
        )
        self._flood_order.clear()
        for peer in self.peers.values():
            peer.neighbors = set(self.topology.neighbors(peer.peer_id))
        if self._routing is not None:
            self._routing.note_overlay_changed()

    def _on_peer_added(self, peer: Peer) -> None:
        # Attach the newcomer to a few random online peers; experiments
        # that want a specific topology call build_overlay() afterwards.
        self._flood_order.clear()
        if self._routing is not None:
            self._routing.note_overlay_changed()
        others = [candidate for candidate in self.online_peers() if candidate.peer_id != peer.peer_id]
        if not others:
            return
        sample_size = min(self.degree, len(others))
        for neighbor in self.simulator.random.sample(others, sample_size):
            self.topology.add_edge(peer.peer_id, neighbor.peer_id)
            peer.connect(neighbor.peer_id)
            neighbor.connect(peer.peer_id)

    def _on_peer_removed(self, peer: Peer) -> None:
        self._flood_order.clear()
        self.topology.remove_peer(peer.peer_id)
        for other in self.peers.values():
            other.disconnect(peer.peer_id)
        if self._routing is not None:
            self._routing.forget_peer(peer.peer_id)

    # ------------------------------------------------------------------
    # Live membership: joins bootstrap links with a TTL-2 PING/PONG
    # discovery flood; links to departed neighbours go stale on both
    # sides and decay only when keepalive PINGs stop being PONGed.
    # ------------------------------------------------------------------
    bootstrap_ttl = 2

    def _on_peer_joined_live(self, peer: Peer) -> None:
        self._discover_neighbors(peer, kind="join")

    def _discover_neighbors(self, peer: Peer, *, kind: str) -> None:
        """Send a discovery PING through a bootstrap peer.

        The bootstrap choice itself is out-of-band (a host cache, in
        real Gnutella) and deterministic: the lowest-id online peer.
        Every PONG that makes it back while the joiner still wants
        links becomes a neighbour edge.
        """
        bootstrap = next((peer_id for peer_id in sorted(self.peers)
                          if peer_id != peer.peer_id and self.peers[peer_id].online),
                         None)
        if bootstrap is None:
            return
        context = MembershipContext(peer_id=peer.peer_id, kind=kind,
                                    started_at=self.simulator.now)
        context.visited.add(peer.peer_id)
        ping = ping_message(peer.peer_id, bootstrap, ttl=self.bootstrap_ttl)
        ping.hops = 1
        self.kernel.send(ping, context=context)

    def _on_ping(self, peer: Optional[Peer], message: Message, context) -> None:
        if peer is None:
            return
        now = self.simulator.now
        if isinstance(context, MembershipContext):
            # Discovery ping: answer with a PONG routed back along the
            # reverse path, then re-flood while TTL remains.
            if peer.peer_id in context.visited:
                return
            context.visited.add(peer.peer_id)
            pong = pong_message(peer.peer_id, context.peer_id,
                                message_id=message.message_id)
            self.kernel.send(pong, context=context, copies=max(1, message.hops),
                             latency_ms=now - context.started_at)
            remaining = message.ttl - 1
            if remaining <= 0:
                return
            for neighbor_id in sorted(peer.neighbors):
                neighbor = self.peers.get(neighbor_id)
                if neighbor is None or not neighbor.online \
                        or neighbor_id in context.visited:
                    continue
                forward = ping_message(peer.peer_id, neighbor_id, ttl=remaining)
                forward.message_id = message.message_id
                forward.hops = message.hops + 1
                self.kernel.send(forward, context=context)
            return
        # Keepalive ping from a neighbour: acknowledge directly.  Under
        # informed routing the PONG also piggybacks this peer's routing
        # filter whenever the copy the neighbour holds went stale — the
        # filters decay and refresh on exactly the lease cadence the
        # membership layer already pays for.
        pong = pong_message(peer.peer_id, message.sender,
                            message_id=message.message_id)
        if self._routing is not None and self.live_membership:
            advert_bytes = self._routing.advertisement_bytes(
                peer.peer_id, message.sender)
            if advert_bytes:
                pong.payload_bytes += advert_bytes
                self.stats.record_filter_advert(advert_bytes)
        self.kernel.send(pong)

    def _on_pong(self, peer: Optional[Peer], message: Message, context) -> None:
        if peer is None:
            return
        now = self.simulator.now
        if isinstance(context, MembershipContext):
            # A discovery answer: take the responder as a neighbour if
            # there is still room.  The responder may have churned
            # offline since it ponged — then the link is stale from
            # birth, which is exactly the fidelity live mode is for.
            other = self.peers.get(message.sender)
            if other is None:
                return
            if message.sender in peer.neighbors:
                peer.last_pong_ms[message.sender] = now
                return
            if len(peer.neighbors) >= self.degree:
                return
            if len(other.neighbors) >= 2 * self.degree:
                # Connection refused: the responder is saturated.  Every
                # join routes through the same deterministic bootstrap,
                # so without this cap a flash crowd would grow one
                # peer's fan-out (and its keepalive bill) without bound.
                return
            self.topology.add_edge(peer.peer_id, message.sender)
            peer.connect(message.sender)
            other.connect(peer.peer_id)
            peer.last_pong_ms[message.sender] = now
            other.last_pong_ms[peer.peer_id] = now
            self._flood_order.clear()
            if self._routing is not None:
                self._routing.note_overlay_changed()
            context.acquired += 1
            return
        peer.last_pong_ms[message.sender] = now

    def _on_maintenance_tick(self, now: float) -> None:
        """One keepalive round per online peer: drop links silent
        beyond the lease, PING the rest, and run discovery again when
        the neighbour set fell below the target degree."""
        lease = self.heartbeat_lease_ms
        for peer_id in sorted(self.peers):
            peer = self.peers[peer_id]
            if not peer.online:
                continue
            for neighbor_id in sorted(peer.neighbors):
                if peer.last_pong_ms.get(neighbor_id, 0.0) <= now - lease:
                    self._drop_link(peer, neighbor_id, now)
            for neighbor_id in sorted(peer.neighbors):
                self.kernel.send(ping_message(peer_id, neighbor_id))
            if len(peer.neighbors) < self.degree:
                self._discover_neighbors(peer, kind="repair")

    def _drop_link(self, peer: Peer, neighbor_id: str, now: float) -> None:
        self.topology.remove_edge(peer.peer_id, neighbor_id)
        peer.disconnect(neighbor_id)
        peer.last_pong_ms.pop(neighbor_id, None)
        other = self.peers.get(neighbor_id)
        if other is not None:
            other.disconnect(peer.peer_id)
            other.last_pong_ms.pop(peer.peer_id, None)
        self._note_staleness(neighbor_id, now)
        self._flood_order.clear()
        if self._routing is not None:
            self._routing.note_overlay_changed()
            self._routing.forget_link(peer.peer_id, neighbor_id)

    def _stamp_freshness(self, now: float) -> None:
        for peer in self.peers.values():
            for neighbor_id in sorted(peer.neighbors):
                peer.last_pong_ms[neighbor_id] = now
        if self._routing is not None:
            # Going live is a structural hand-off, not protocol traffic:
            # the filters every neighbour currently holds count as
            # already advertised, so only *changes* from here on ride
            # (and bill) the keepalive PONGs.
            self._routing.mark_all_advertised()

    # ------------------------------------------------------------------
    # Primitives
    # ------------------------------------------------------------------
    def publish(self, peer_id: str, community_id: str, resource_id: str,
                metadata: dict[str, list[str]], *, title: str = "") -> None:
        """Publishing is free in Gnutella: the object simply sits in the
        peer's repository waiting for queries to reach it."""
        self._require_peer(peer_id)
        self.replicas.note_original(resource_id, peer_id, at_ms=self.simulator.now)
        if self._routing is not None:
            self._routing.note_content_changed(peer_id)
        if self.result_caching:
            # The publisher's own cached answers predate the new object;
            # nobody else hears about a free publish, so remote caches
            # stay bounded by their TTL instead.
            cache = self._peer_caches.get(peer_id)
            if cache is not None:
                cache.bump_version()

    def start_search(self, origin_id: str, query: Query, *, max_results: int = 100,
                     ttl: Optional[int] = None, **kwargs) -> QueryContext:
        origin = self._require_peer(origin_id)
        ttl = ttl if ttl is not None else self.default_ttl
        context = self.new_context(
            origin_id, query, max_results=max_results,
            query_id=query.query_id or f"flood-{self.next_query_number()}",
        )
        context.visited.add(origin_id)
        # The flood TTL bounds coverage, so it scopes the cache key: a
        # ttl=1 search's sparse answer must not satisfy a ttl=6 repeat
        # (a false negative).  The scope is deliberately one-directional:
        # a same-ttl entry cached at a *different* vantage point may
        # serve true results from beyond this origin's flood horizon —
        # that is classic Gnutella query-hit caching, extra coverage for
        # free, and never a fabricated answer.
        context.extra["cache_scope"] = ttl
        if self.result_caching:
            cache = self._peer_cache(origin_id)
            cached = cache.get(self._context_cache_key(context),
                               self.simulator.now) if cache is not None else None
            if cached is not None:
                # The origin re-asked a query it recently completed: the
                # whole flood is saved and the cached set (its own local
                # answers included) returns with zero messages.
                self._serve_cached_locally(context, cached)
                self.kernel.finish_if_idle(context)
                return context
            self.stats.record_cache_miss()
        # The wire form is rendered and measured once; every hop's QUERY
        # message shares the same payload string and byte count.
        wire_xml, wire_bytes = self.wire_form(query, context.plan)
        context.extra["query_xml"] = wire_xml
        context.extra["query_bytes"] = wire_bytes

        # The origin searches its own index first (no messages).
        for stored in local_matches(origin.repository, query, plan=context.plan,
                                    limit=max_results):
            context.add_result(SearchResult.from_stored(origin_id, stored, hops=0))

        if ttl > 0:
            self._flood_from(origin, ttl=ttl, hops=1, context=context)
        self.kernel.finish_if_idle(context)
        return context

    # ------------------------------------------------------------------
    # Message handlers
    # ------------------------------------------------------------------
    def _register_handlers(self, kernel: EventKernel) -> None:
        super()._register_handlers(kernel)
        kernel.register(MessageType.QUERY, self._on_query)
        kernel.register(MessageType.PING, self._on_ping)
        kernel.register(MessageType.PONG, self._on_pong)

    def _on_query(self, peer: Optional[Peer], message: Message,
                  context: Optional[QueryContext]) -> None:
        """One QUERY copy arrived at ``peer``: accept, answer, re-flood.

        Hits ride the QUERY-HIT back to the origin and only count on
        arrival (see ``PeerNetwork._on_query_hit``); here we claim the
        room they will occupy so concurrent answerers never promise
        more than ``max_results`` between them.
        """
        if peer is None or context is None:
            return
        if peer.peer_id in context.visited:
            return  # duplicate suppression: a faster copy got here first
        context.visited.add(peer.peer_id)
        context.peers_probed += 1
        hops = message.hops

        if self.result_caching:
            cache = self._peer_caches.get(peer.peer_id)
            if cache is not None:
                cached = cache.get(self._context_cache_key(context), self.simulator.now)
                if cached is not None:
                    # Path caching: this peer completed the same query
                    # recently and answers for its whole flood subtree
                    # from the cached set — the flood stops here.  (An
                    # empty cached set still cuts the flood: repeated
                    # miss-queries are the most expensive to re-flood.)
                    self._send_cached_hit(peer.peer_id, context, cached,
                                          message_id=message.message_id,
                                          copies=max(1, message.hops))
                    return
                # Symmetric accounting: every lookup at a cache site
                # counts, so the hit ratio compares across protocols.
                self.stats.record_cache_miss()

        room = context.room()
        if room <= 0:
            taken = []
        elif self.result_caching:
            # A cached serving elsewhere in the flood may already have
            # promised some of this peer's results; those are filtered
            # *before* the room limit is applied (a promised duplicate
            # must neither claim room twice nor consume a limit slot a
            # fresh match needed), and the survivors register in turn.
            seen = self._promised_results(context)
            taken = [stored
                     for stored in local_matches(peer.repository, context.query,
                                                 plan=context.plan)
                     if (peer.peer_id, stored.resource_id) not in seen][:room]
            seen.update((peer.peer_id, stored.resource_id) for stored in taken)
            self.kernel.note_result_claims(
                context, tuple((peer.peer_id, stored.resource_id)
                               for stored in taken))
        else:
            taken = local_matches(peer.repository, context.query, plan=context.plan,
                                  limit=room)
        if (self._routing is not None and message.ttl == 1 and room > 0
                and not taken
                and context.extra.get("routing_keys") is not None
                and message.sender not in context.extra.get("fallback_hops", ())):
            # Fringe copy that an attenuated filter admitted (this hop
            # was pruned, not a blind fallback) yet the local index has
            # nothing: a Bloom false positive paid for in one message.
            self.stats.record_routing_fp()
        if taken:
            results = []
            metadata_bytes = 0
            for stored in taken:
                result = SearchResult.from_stored(peer.peer_id, stored, hops=hops)
                results.append(result)
                metadata_bytes += stored.metadata_wire_bytes()
            context.claim(len(results))
            # The query hit travels back along the reverse path: one
            # message per hop, arriving after the same latency the query
            # spent getting here.
            hit = query_hit_message(peer.peer_id, context.origin_id, result_count=len(taken),
                                    metadata_bytes=metadata_bytes,
                                    message_id=message.message_id)
            hit.carried_results = tuple(results)
            self.kernel.send(hit, context=context, copies=max(1, hops),
                             latency_ms=self.simulator.now - context.started_at)

        remaining = message.ttl - 1
        if remaining > 0:
            self._flood_from(peer, ttl=remaining, hops=hops + 1, context=context)

    def _cache_store(self, context: QueryContext, response) -> None:
        """The origin caches its finished response, becoming a cache
        site for its own repeats and for floods passing through it."""
        self._store_response_at(self._peer_cache(context.origin_id), context, response)

    def _parallel_serve_probe(self, message: Message, context, at_ms: float) -> bool:
        """A queued QUERY serves from the recipient's path cache iff the
        peer is fresh for this flood and holds a live entry (the same
        branch ``_on_query`` takes, read side-effect free)."""
        if not self.result_caching or context is None:
            return False
        if message.type is not MessageType.QUERY:
            return False
        if message.recipient in context.visited:
            return False
        cache = self._peer_caches.get(message.recipient)
        if cache is None:
            return False
        return cache.peek(self._context_cache_key(context), at_ms) is not None

    def _flood_from(self, peer: Peer, *, ttl: int, hops: int, context: QueryContext) -> None:
        """Send one QUERY copy to every online neighbour of ``peer``.

        Every copy shares the immutable wire form rendered at search
        start — no per-neighbour serialization or byte counting.

        Under ``informed_routing`` the fan-out narrows once the
        remaining TTL fits inside the filter depth: only neighbours
        whose attenuated filter admits the query's probe keys within
        the remaining horizon get a copy.  The filters have no false
        negatives over the current overlay, so pruning drops only
        copies that could not have produced a hit; if *no* neighbour
        admits, the hop falls back to the full blind fan-out rather
        than silently truncating the flood.
        """
        extra = context.extra
        query_xml = extra["query_xml"]
        query_bytes = extra["query_bytes"]
        community_id = context.query.community_id
        peers = self.peers
        send = self.kernel.send
        peer_id = peer.peer_id
        order = self._flood_order.get(peer_id)
        if order is None:
            order = sorted(peer.neighbors)
            self._flood_order[peer_id] = order
        targets = []
        for neighbor_id in order:
            neighbor = peers.get(neighbor_id)
            if neighbor is not None and neighbor.online:
                targets.append(neighbor_id)
        routing = self._routing
        if routing is not None and targets and ttl <= routing.depth:
            hashed = extra.get("routing_keys", _KEYS_UNSET)
            if hashed is _KEYS_UNSET:
                # Hash the probe keys once per flood; every hop reuses
                # the positions.  ``None`` marks an unprobeable query
                # (no compilable criterion), which floods blind.
                plan = context.plan or compile_query(context.query)
                keys = plan.routing_keys
                hashed = None if keys is None else routing.hash_keys(keys)
                extra["routing_keys"] = hashed
            if hashed is not None:
                admitted = [neighbor_id for neighbor_id in targets
                            if routing.admits(neighbor_id, hashed, ttl)]
                if admitted:
                    self.stats.record_routing_pruned(len(targets) - len(admitted))
                    targets = admitted
                else:
                    # No filter admits the query from here: fall back to
                    # the blind fan-out (the no-lost-results contract) and
                    # exempt this hop's receivers from FP accounting.
                    self.stats.record_routing_fallback()
                    extra.setdefault("fallback_hops", set()).add(peer_id)
        for neighbor_id in targets:
            message = Message(
                type=MessageType.QUERY,
                sender=peer_id,
                recipient=neighbor_id,
                ttl=ttl,
                hops=hops,
                payload_bytes=query_bytes,
                query_xml=query_xml,
                community_id=community_id,
            )
            send(message, context=context)

    # ------------------------------------------------------------------
    def reachable_peers(self, origin_id: str, ttl: Optional[int] = None) -> int:
        """How many online peers a flood from ``origin_id`` can reach."""
        ttl = ttl if ttl is not None else self.default_ttl
        visited = {origin_id}
        queue: deque[tuple[str, int]] = deque([(origin_id, ttl)])
        while queue:
            current_id, remaining = queue.popleft()
            if remaining <= 0:
                continue
            current = self.peers.get(current_id)
            if current is None or not current.online:
                continue
            for neighbor_id in sorted(current.neighbors):
                neighbor = self.peers.get(neighbor_id)
                if neighbor is None or not neighbor.online or neighbor_id in visited:
                    continue
                visited.add(neighbor_id)
                queue.append((neighbor_id, remaining - 1))
        return len(visited) - 1
