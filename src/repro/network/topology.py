"""Overlay topology generation.

The decentralized protocols need a neighbour graph.  Measurements of
the real Gnutella network around the time of the paper showed power-law
degree distributions, so the experiments default to a Barabási–Albert
preferential-attachment overlay; random (Erdős–Rényi), ring and star
shapes are available for ablations and for the centralized baseline.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable

import networkx as nx


@dataclass
class Topology:
    """An undirected overlay graph over peer ids."""

    adjacency: dict[str, set[str]] = field(default_factory=dict)

    @property
    def peer_ids(self) -> list[str]:
        return list(self.adjacency)

    def neighbors(self, peer_id: str) -> set[str]:
        return self.adjacency.get(peer_id, set())

    def degree(self, peer_id: str) -> int:
        return len(self.neighbors(peer_id))

    def edge_count(self) -> int:
        return sum(len(neighbors) for neighbors in self.adjacency.values()) // 2

    def edges(self) -> Iterable[tuple[str, str]]:
        """Every undirected edge once, as ``(a, b)`` with ``a < b``.

        Sorted-order iteration keeps consumers (shard partitioning,
        cross-shard edge counting) deterministic.
        """
        for node in sorted(self.adjacency):
            for neighbor in sorted(self.adjacency[node]):
                if node < neighbor:
                    yield node, neighbor

    def add_edge(self, a: str, b: str) -> None:
        if a == b:
            return
        self.adjacency.setdefault(a, set()).add(b)
        self.adjacency.setdefault(b, set()).add(a)

    def remove_edge(self, a: str, b: str) -> None:
        self.adjacency.get(a, set()).discard(b)
        self.adjacency.get(b, set()).discard(a)

    def remove_peer(self, peer_id: str) -> None:
        for neighbor in sorted(self.adjacency.pop(peer_id, set())):
            self.adjacency.get(neighbor, set()).discard(peer_id)

    def is_connected(self) -> bool:
        if not self.adjacency:
            return True
        graph = self.to_networkx()
        return nx.is_connected(graph)

    def average_path_length(self) -> float:
        graph = self.to_networkx()
        if graph.number_of_nodes() < 2 or not nx.is_connected(graph):
            return float("inf")
        return nx.average_shortest_path_length(graph)

    def to_networkx(self) -> "nx.Graph":
        graph = nx.Graph()
        graph.add_nodes_from(self.adjacency)
        for node, neighbors in self.adjacency.items():
            for neighbor in neighbors:
                graph.add_edge(node, neighbor)
        return graph


def build_topology(
    peer_ids: Iterable[str],
    *,
    kind: str = "power-law",
    degree: int = 4,
    seed: int = 0,
) -> Topology:
    """Build an overlay of the requested ``kind`` over ``peer_ids``.

    Supported kinds: ``power-law`` (Barabási–Albert), ``random``
    (Erdős–Rényi with the same expected degree), ``ring`` and ``star``.
    The result is patched to be connected so that flooding reachability
    experiments measure TTL effects, not partitioning artefacts.
    """
    ids = list(peer_ids)
    topology = Topology({peer_id: set() for peer_id in ids})
    if len(ids) <= 1:
        return topology
    rng = random.Random(seed)

    if kind == "ring":
        for index, peer_id in enumerate(ids):
            topology.add_edge(peer_id, ids[(index + 1) % len(ids)])
    elif kind == "star":
        hub = ids[0]
        for peer_id in ids[1:]:
            topology.add_edge(hub, peer_id)
    elif kind == "random":
        probability = min(1.0, degree / max(1, len(ids) - 1))
        graph = nx.gnp_random_graph(len(ids), probability, seed=seed)
        for a, b in graph.edges():
            topology.add_edge(ids[a], ids[b])
    elif kind == "power-law":
        attachment = max(1, min(degree // 2 or 1, len(ids) - 1))
        graph = nx.barabasi_albert_graph(len(ids), attachment, seed=seed)
        for a, b in graph.edges():
            topology.add_edge(ids[a], ids[b])
    else:
        raise ValueError(f"unknown topology kind {kind!r}")

    _ensure_connected(topology, ids, rng)
    return topology


def _ensure_connected(topology: Topology, ids: list[str], rng: random.Random) -> None:
    graph = topology.to_networkx()
    components = [sorted(component) for component in nx.connected_components(graph)]
    if len(components) <= 1:
        return
    anchor_component = components[0]
    for component in components[1:]:
        topology.add_edge(rng.choice(anchor_component), rng.choice(component))
