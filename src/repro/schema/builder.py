"""Programmatic schema construction.

The paper (§VI) mentions a web-based tool for generating XML Schema so
that community authors never touch raw XSD.  :class:`SchemaBuilder` is
the library equivalent: a fluent builder that produces both a
:class:`~repro.schema.model.Schema` object and its XSD serialization.

Example
-------
>>> builder = SchemaBuilder("mp3")
>>> builder.field("title", searchable=True)
... # doctest: +ELLIPSIS
<repro.schema.builder.SchemaBuilder object at ...>
>>> schema = builder.build()
>>> [f.path for f in schema.searchable_fields()]
['title']
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.schema.datatypes import is_builtin
from repro.schema.errors import SchemaError
from repro.schema.model import (
    ComplexType,
    ElementDeclaration,
    Facets,
    Occurrence,
    Particle,
    Schema,
    SimpleType,
)
from repro.xmlkit.dom import Element, XSD_NAMESPACE
from repro.xmlkit.serializer import pretty

UP2P_NAMESPACE = "http://up2p.repro/extensions"


@dataclass
class _FieldSpec:
    name: str
    type_name: str = "string"
    searchable: bool = False
    attachment: bool = False
    optional: bool = False
    repeated: bool = False
    enumeration: Sequence[str] = ()
    documentation: str = ""
    children: list["_FieldSpec"] = field(default_factory=list)


class SchemaBuilder:
    """Fluent builder for community schemas.

    Parameters
    ----------
    root_name:
        Name of the shared object's root element (``community``,
        ``mp3``, ``pattern`` …).
    target_namespace:
        Optional target namespace for the generated schema.
    """

    def __init__(self, root_name: str, *, target_namespace: Optional[str] = None) -> None:
        if not root_name or not root_name.strip():
            raise SchemaError("the root element needs a non-empty name")
        self._root_name = root_name.strip()
        self._target_namespace = target_namespace
        self._fields: list[_FieldSpec] = []
        self._groups: list[_FieldSpec] = []

    # ------------------------------------------------------------------
    def field(
        self,
        name: str,
        type_name: str = "string",
        *,
        searchable: bool = False,
        attachment: bool = False,
        optional: bool = False,
        repeated: bool = False,
        enumeration: Sequence[str] = (),
        documentation: str = "",
    ) -> "SchemaBuilder":
        """Add a leaf field to the root element's content model."""
        self._fields.append(
            _FieldSpec(
                name=name,
                type_name=type_name,
                searchable=searchable,
                attachment=attachment,
                optional=optional,
                repeated=repeated,
                enumeration=tuple(enumeration),
                documentation=documentation,
            )
        )
        return self

    def group(self, name: str, *, optional: bool = False, repeated: bool = False) -> "GroupBuilder":
        """Add a nested element with its own sub-fields and return its builder."""
        spec = _FieldSpec(name=name, optional=optional, repeated=repeated)
        self._fields.append(spec)
        return GroupBuilder(self, spec)

    # ------------------------------------------------------------------
    def build(self) -> Schema:
        """Produce the :class:`Schema` object."""
        if not self._fields:
            raise SchemaError("a community schema needs at least one field")
        schema = Schema(target_namespace=self._target_namespace)
        particle = Particle(kind="sequence")
        enum_count = 0
        for spec in self._fields:
            declaration, new_types = _build_declaration(spec, enum_count)
            enum_count += len(new_types)
            for simple_type in new_types:
                schema.add_simple_type(simple_type)
            particle.items.append(declaration)
        root_type = ComplexType(name=None, particle=particle)
        schema.add_element(ElementDeclaration(name=self._root_name, complex_type=root_type))
        return schema

    def to_xsd(self) -> str:
        """Produce the XSD text of the schema (used to share the community)."""
        return schema_to_xsd(self.build())


class GroupBuilder:
    """Builder for a nested group created by :meth:`SchemaBuilder.group`."""

    def __init__(self, parent: SchemaBuilder, spec: _FieldSpec) -> None:
        self._parent = parent
        self._spec = spec

    def field(
        self,
        name: str,
        type_name: str = "string",
        *,
        searchable: bool = False,
        attachment: bool = False,
        optional: bool = False,
        repeated: bool = False,
        enumeration: Sequence[str] = (),
        documentation: str = "",
    ) -> "GroupBuilder":
        self._spec.children.append(
            _FieldSpec(
                name=name,
                type_name=type_name,
                searchable=searchable,
                attachment=attachment,
                optional=optional,
                repeated=repeated,
                enumeration=tuple(enumeration),
                documentation=documentation,
            )
        )
        return self

    def end(self) -> SchemaBuilder:
        """Return to the parent builder."""
        if not self._spec.children:
            raise SchemaError(f"group {self._spec.name!r} has no fields")
        return self._parent


# ----------------------------------------------------------------------
def _build_declaration(spec: _FieldSpec, enum_offset: int) -> tuple[ElementDeclaration, list[SimpleType]]:
    occurrence = Occurrence(
        min_occurs=0 if spec.optional else 1,
        max_occurs=None if spec.repeated else 1,
    )
    if spec.children:
        particle = Particle(kind="sequence")
        new_types: list[SimpleType] = []
        for child in spec.children:
            declaration, child_types = _build_declaration(child, enum_offset + len(new_types))
            new_types.extend(child_types)
            particle.items.append(declaration)
        return (
            ElementDeclaration(
                name=spec.name,
                complex_type=ComplexType(name=None, particle=particle),
                occurrence=occurrence,
                documentation=spec.documentation,
            ),
            new_types,
        )
    if spec.enumeration:
        type_name = f"{spec.name}Values{enum_offset or ''}"
        simple = SimpleType(
            name=type_name,
            base=spec.type_name,
            facets=Facets(enumeration=list(spec.enumeration)),
        )
        declaration = ElementDeclaration(
            name=spec.name,
            type_name=type_name,
            occurrence=occurrence,
            searchable=spec.searchable,
            attachment=spec.attachment,
            documentation=spec.documentation,
        )
        return declaration, [simple]
    if not is_builtin(spec.type_name):
        raise SchemaError(
            f"field {spec.name!r} references unknown type {spec.type_name!r}; "
            "use a built-in type or an enumeration"
        )
    declaration = ElementDeclaration(
        name=spec.name,
        type_name=f"xsd:{spec.type_name}" if ":" not in spec.type_name else spec.type_name,
        occurrence=occurrence,
        searchable=spec.searchable,
        attachment=spec.attachment,
        documentation=spec.documentation,
    )
    return declaration, []


# ----------------------------------------------------------------------
# Schema -> XSD serialization
# ----------------------------------------------------------------------
def schema_to_xsd(schema: Schema) -> str:
    """Serialize a schema back to XSD text.

    The output is accepted by :func:`repro.schema.parser.parse_schema_text`,
    which gives us a parse → serialize → parse round-trip used heavily in
    the property-based tests.
    """
    root = Element("schema", {"xmlns": XSD_NAMESPACE, "xmlns:xsd": XSD_NAMESPACE,
                              "xmlns:up2p": UP2P_NAMESPACE})
    if schema.target_namespace:
        root.set("targetNamespace", schema.target_namespace)
    for declaration in schema.elements.values():
        root.append(_element_to_xml(declaration))
    for simple in schema.simple_types.values():
        root.append(_simple_type_to_xml(simple))
    for complex_type in schema.complex_types.values():
        root.append(_complex_type_to_xml(complex_type))
    return pretty(root)


def _element_to_xml(declaration: ElementDeclaration) -> Element:
    node = Element("element", {"name": declaration.name})
    if declaration.type_name:
        node.set("type", declaration.type_name)
    if declaration.occurrence.min_occurs != 1:
        node.set("minOccurs", str(declaration.occurrence.min_occurs))
    if declaration.occurrence.max_occurs is None:
        node.set("maxOccurs", "unbounded")
    elif declaration.occurrence.max_occurs != 1:
        node.set("maxOccurs", str(declaration.occurrence.max_occurs))
    if declaration.searchable:
        node.set("up2p:searchable", "true")
    if declaration.attachment:
        node.set("up2p:attachment", "true")
    if declaration.documentation:
        annotation = node.make_child("annotation")
        annotation.make_child("documentation", text=declaration.documentation)
    if declaration.complex_type is not None:
        node.append(_complex_type_to_xml(declaration.complex_type))
    if declaration.simple_type is not None:
        node.append(_simple_type_to_xml(declaration.simple_type))
    return node


def _complex_type_to_xml(definition: ComplexType) -> Element:
    node = Element("complexType")
    if definition.name:
        node.set("name", definition.name)
    if definition.mixed:
        node.set("mixed", "true")
    if definition.particle is not None:
        node.append(_particle_to_xml(definition.particle))
    for attribute in definition.attributes:
        attr_node = node.make_child("attribute", attributes={"name": attribute.name,
                                                             "type": attribute.type_name})
        if attribute.required:
            attr_node.set("use", "required")
        if attribute.default is not None:
            attr_node.set("default", attribute.default)
    return node


def _particle_to_xml(particle: Particle) -> Element:
    node = Element(particle.kind)
    if particle.occurrence.min_occurs != 1:
        node.set("minOccurs", str(particle.occurrence.min_occurs))
    if particle.occurrence.max_occurs is None:
        node.set("maxOccurs", "unbounded")
    elif particle.occurrence.max_occurs != 1:
        node.set("maxOccurs", str(particle.occurrence.max_occurs))
    for item in particle.items:
        if isinstance(item, ElementDeclaration):
            node.append(_element_to_xml(item))
        else:
            node.append(_particle_to_xml(item))
    return node


def _simple_type_to_xml(simple: SimpleType) -> Element:
    node = Element("simpleType")
    if simple.name:
        node.set("name", simple.name)
    base = simple.base if ":" in simple.base or not is_builtin(simple.base) else f"xsd:{simple.base}"
    restriction = node.make_child("restriction", attributes={"base": base})
    facets = simple.facets
    for value in facets.enumeration:
        restriction.make_child("enumeration", attributes={"value": value})
    if facets.pattern is not None:
        restriction.make_child("pattern", attributes={"value": facets.pattern})
    for name, value in (
        ("length", facets.length),
        ("minLength", facets.min_length),
        ("maxLength", facets.max_length),
        ("minInclusive", facets.min_inclusive),
        ("maxInclusive", facets.max_inclusive),
        ("minExclusive", facets.min_exclusive),
        ("maxExclusive", facets.max_exclusive),
    ):
        if value is not None:
            text_value = str(int(value)) if float(value).is_integer() else str(value)
            restriction.make_child(name, attributes={"value": text_value})
    return node
