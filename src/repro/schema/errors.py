"""Error and report types for the schema substrate."""

from __future__ import annotations

from dataclasses import dataclass


class SchemaError(Exception):
    """Base class for schema-layer errors."""


class SchemaParseError(SchemaError):
    """Raised when an XSD document cannot be interpreted."""


class UnknownTypeError(SchemaError):
    """Raised when an element references a type that is not defined."""


@dataclass(frozen=True)
class ValidationError:
    """One validation problem found in an instance document.

    ``path`` is the slash-separated element path from the document root
    to the offending node, ``code`` is a stable machine-readable
    identifier and ``message`` is the human-readable explanation.
    """

    path: str
    code: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}: [{self.code}] {self.message}"
