"""Instance-document validation against a parsed schema.

The validator walks the instance tree alongside the schema's content
model and reports every problem it finds (it does not stop at the first
error) so that the Create form can show all field errors at once, the
behaviour the paper's web interface implies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.schema.datatypes import check_builtin, is_builtin
from repro.schema.errors import ValidationError
from repro.schema.model import (
    AttributeDeclaration,
    ComplexType,
    ElementDeclaration,
    Particle,
    Schema,
)
from repro.xmlkit.dom import Document, Element


@dataclass
class ValidationReport:
    """The outcome of validating one instance document."""

    errors: list[ValidationError] = field(default_factory=list)

    @property
    def is_valid(self) -> bool:
        return not self.errors

    def add(self, path: str, code: str, message: str) -> None:
        self.errors.append(ValidationError(path=path, code=code, message=message))

    def summary(self) -> str:
        if self.is_valid:
            return "valid"
        return "; ".join(str(error) for error in self.errors)

    def __bool__(self) -> bool:
        return self.is_valid

    def __len__(self) -> int:
        return len(self.errors)


def validate(schema: Schema, instance: Union[Document, Element]) -> ValidationReport:
    """Validate ``instance`` against ``schema`` and return a report."""
    root = instance.root if isinstance(instance, Document) else instance
    report = ValidationReport()
    declaration = schema.elements.get(root.local_name)
    if declaration is None:
        expected = ", ".join(schema.elements) or "(none)"
        report.add(
            root.local_name,
            "unexpected-root",
            f"root element <{root.local_name}> is not declared (expected one of: {expected})",
        )
        return report
    _validate_element(schema, declaration, root, root.local_name, report)
    return report


# ----------------------------------------------------------------------
def _validate_element(
    schema: Schema,
    declaration: ElementDeclaration,
    element: Element,
    path: str,
    report: ValidationReport,
) -> None:
    complex_type = schema.resolve_complex_type(declaration)
    if complex_type is not None:
        _validate_complex(schema, complex_type, element, path, report)
        return
    # Simple content: no child elements allowed.
    if element.children:
        report.add(
            path,
            "unexpected-children",
            f"element <{element.local_name}> has a simple type but contains child elements",
        )
    value = element.text_content().strip()
    _validate_simple_value(schema, declaration, value, path, report)


def _validate_simple_value(
    schema: Schema,
    declaration: ElementDeclaration,
    value: str,
    path: str,
    report: ValidationReport,
) -> None:
    simple = schema.resolve_simple_type(declaration)
    type_name = declaration.resolved_type_name()
    if simple is not None:
        for problem in simple.problems(value, schema):
            report.add(path, "facet-violation", problem)
        return
    if type_name and is_builtin(type_name) and not check_builtin(type_name, value):
        report.add(
            path,
            "datatype-mismatch",
            f"value {value!r} is not a valid {type_name}",
        )
    elif type_name and not is_builtin(type_name):
        report.add(
            path,
            "unknown-type",
            f"element references undefined type {type_name!r}",
        )


def _validate_complex(
    schema: Schema,
    complex_type: ComplexType,
    element: Element,
    path: str,
    report: ValidationReport,
) -> None:
    _validate_attributes(schema, complex_type, element, path, report)
    if complex_type.particle is None:
        if element.children:
            report.add(
                path,
                "unexpected-children",
                f"type {complex_type.name or '(anonymous)'} does not allow child elements",
            )
        return
    _validate_particle(schema, complex_type.particle, element, path, report)
    if not complex_type.mixed and element.text.strip():
        report.add(
            path,
            "unexpected-text",
            "character data is not allowed in a non-mixed complex type",
        )


def _validate_attributes(
    schema: Schema,
    complex_type: ComplexType,
    element: Element,
    path: str,
    report: ValidationReport,
) -> None:
    declared = {attribute.name: attribute for attribute in complex_type.attributes}
    present = {
        name: value
        for name, value in element.attributes.items()
        if not name.startswith("xmlns") and ":" not in name
    }
    for name, attribute in declared.items():
        if attribute.required and name not in present:
            report.add(path, "missing-attribute", f"required attribute {name!r} is missing")
    for name, value in present.items():
        attribute = declared.get(name)
        if attribute is None:
            report.add(path, "unexpected-attribute", f"attribute {name!r} is not declared")
            continue
        _validate_attribute_value(schema, attribute, value, f"{path}/@{name}", report)


def _validate_attribute_value(
    schema: Schema,
    attribute: AttributeDeclaration,
    value: str,
    path: str,
    report: ValidationReport,
) -> None:
    if attribute.fixed is not None and value != attribute.fixed:
        report.add(path, "fixed-mismatch", f"attribute must have the fixed value {attribute.fixed!r}")
    if attribute.simple_type is not None:
        for problem in attribute.simple_type.problems(value, schema):
            report.add(path, "facet-violation", problem)
        return
    type_name = attribute.type_name.split(":")[-1]
    if type_name in schema.simple_types:
        for problem in schema.simple_types[type_name].problems(value, schema):
            report.add(path, "facet-violation", problem)
    elif is_builtin(type_name) and not check_builtin(type_name, value):
        report.add(path, "datatype-mismatch", f"value {value!r} is not a valid {type_name}")


def _validate_particle(
    schema: Schema,
    particle: Particle,
    element: Element,
    path: str,
    report: ValidationReport,
) -> None:
    declarations = list(particle.element_declarations())
    declared_names = {declaration.name for declaration in declarations}
    counts: dict[str, int] = {}
    for child in element.children:
        counts[child.local_name] = counts.get(child.local_name, 0) + 1
        if child.local_name not in declared_names:
            report.add(
                f"{path}/{child.local_name}",
                "unexpected-element",
                f"element <{child.local_name}> is not declared in the content model",
            )

    if particle.kind == "choice":
        _check_choice(declarations, counts, path, report)
    else:
        for declaration in declarations:
            count = counts.get(declaration.name, 0)
            if not declaration.occurrence.allows(count):
                bound = declaration.occurrence
                expected = f"between {bound.min_occurs} and " + (
                    "unbounded" if bound.max_occurs is None else str(bound.max_occurs)
                )
                report.add(
                    f"{path}/{declaration.name}",
                    "occurrence-violation",
                    f"element <{declaration.name}> occurs {count} times, expected {expected}",
                )

    if particle.kind == "sequence":
        _check_sequence_order(declarations, element, path, report)

    # Recurse into matching children.
    by_name = {declaration.name: declaration for declaration in declarations}
    positions: dict[str, int] = {}
    for child in element.children:
        declaration = by_name.get(child.local_name)
        if declaration is None:
            continue
        index = positions.get(child.local_name, 0) + 1
        positions[child.local_name] = index
        suffix = f"[{index}]" if counts.get(child.local_name, 0) > 1 else ""
        _validate_element(schema, declaration, child, f"{path}/{child.local_name}{suffix}", report)


def _check_choice(
    declarations: list[ElementDeclaration],
    counts: dict[str, int],
    path: str,
    report: ValidationReport,
) -> None:
    present = [name for name in counts if name in {d.name for d in declarations}]
    if len(present) > 1:
        report.add(
            path,
            "choice-violation",
            f"only one of {sorted(d.name for d in declarations)} may appear, found {sorted(present)}",
        )
    if not present and all(declaration.occurrence.min_occurs > 0 for declaration in declarations):
        report.add(
            path,
            "choice-violation",
            f"one of {sorted(d.name for d in declarations)} is required",
        )


def _check_sequence_order(
    declarations: list[ElementDeclaration],
    element: Element,
    path: str,
    report: ValidationReport,
) -> None:
    order = {declaration.name: index for index, declaration in enumerate(declarations)}
    last_index = -1
    last_name: Optional[str] = None
    for child in element.children:
        index = order.get(child.local_name)
        if index is None:
            continue
        if index < last_index:
            report.add(
                f"{path}/{child.local_name}",
                "sequence-order",
                f"element <{child.local_name}> must appear before <{last_name}>",
            )
        else:
            last_index = index
            last_name = child.local_name
