"""The schema component model.

This is the in-memory form of an XML Schema document.  It supports the
subset of XML Schema that U-P2P community schemas use:

* global element declarations with inline or named types,
* ``complexType`` with ``sequence`` / ``choice`` / ``all`` particles,
  nested groups and attributes,
* ``simpleType`` with ``restriction`` facets (enumeration, pattern,
  length bounds, numeric bounds),
* occurrence bounds (``minOccurs`` / ``maxOccurs``),
* the U-P2P ``searchable`` annotation used to decide which fields feed
  the inverted index (the paper calls these "fields marked searchable").
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterator, Optional, Union

from repro.schema.datatypes import check_builtin, is_builtin, strip_prefix
from repro.schema.errors import SchemaError

UNBOUNDED: Optional[int] = None


@dataclass(frozen=True)
class Occurrence:
    """Occurrence bounds of a particle or element.

    ``max_occurs`` of ``None`` means *unbounded*.
    """

    min_occurs: int = 1
    max_occurs: Optional[int] = 1

    def allows(self, count: int) -> bool:
        """Return True if ``count`` occurrences satisfy the bounds."""
        if count < self.min_occurs:
            return False
        if self.max_occurs is not None and count > self.max_occurs:
            return False
        return True

    @property
    def is_optional(self) -> bool:
        return self.min_occurs == 0

    @property
    def is_repeated(self) -> bool:
        return self.max_occurs is None or self.max_occurs > 1

    @classmethod
    def parse(cls, min_occurs: Optional[str], max_occurs: Optional[str]) -> "Occurrence":
        minimum = int(min_occurs) if min_occurs not in (None, "") else 1
        if max_occurs in (None, ""):
            maximum: Optional[int] = 1
        elif max_occurs == "unbounded":
            maximum = UNBOUNDED
        else:
            maximum = int(max_occurs)
        if maximum is not None and maximum < minimum:
            raise SchemaError(
                f"maxOccurs ({maximum}) must not be smaller than minOccurs ({minimum})"
            )
        return cls(minimum, maximum)


@dataclass
class Facets:
    """Restriction facets of a simple type."""

    enumeration: list[str] = field(default_factory=list)
    pattern: Optional[str] = None
    length: Optional[int] = None
    min_length: Optional[int] = None
    max_length: Optional[int] = None
    min_inclusive: Optional[float] = None
    max_inclusive: Optional[float] = None
    min_exclusive: Optional[float] = None
    max_exclusive: Optional[float] = None
    whitespace: Optional[str] = None

    def problems(self, value: str) -> list[str]:
        """Return a list of facet violations for ``value`` (empty if ok)."""
        issues: list[str] = []
        if self.enumeration and value not in self.enumeration:
            allowed = ", ".join(repr(v) for v in self.enumeration[:8])
            issues.append(f"value {value!r} is not one of the enumerated values ({allowed})")
        if self.pattern is not None and re.fullmatch(self.pattern, value) is None:
            issues.append(f"value {value!r} does not match pattern {self.pattern!r}")
        if self.length is not None and len(value) != self.length:
            issues.append(f"value must be exactly {self.length} characters long")
        if self.min_length is not None and len(value) < self.min_length:
            issues.append(f"value must be at least {self.min_length} characters long")
        if self.max_length is not None and len(value) > self.max_length:
            issues.append(f"value must be at most {self.max_length} characters long")
        numeric_facets = (
            self.min_inclusive,
            self.max_inclusive,
            self.min_exclusive,
            self.max_exclusive,
        )
        if any(bound is not None for bound in numeric_facets):
            try:
                number = float(value)
            except ValueError:
                issues.append(f"value {value!r} is not numeric but has numeric bounds")
            else:
                if self.min_inclusive is not None and number < self.min_inclusive:
                    issues.append(f"value must be >= {self.min_inclusive}")
                if self.max_inclusive is not None and number > self.max_inclusive:
                    issues.append(f"value must be <= {self.max_inclusive}")
                if self.min_exclusive is not None and number <= self.min_exclusive:
                    issues.append(f"value must be > {self.min_exclusive}")
                if self.max_exclusive is not None and number >= self.max_exclusive:
                    issues.append(f"value must be < {self.max_exclusive}")
        return issues

    def is_empty(self) -> bool:
        return not self.enumeration and all(
            bound is None
            for bound in (
                self.pattern,
                self.length,
                self.min_length,
                self.max_length,
                self.min_inclusive,
                self.max_inclusive,
                self.min_exclusive,
                self.max_exclusive,
            )
        )


@dataclass
class SimpleType:
    """A named or anonymous simple type: a base type plus facets."""

    name: Optional[str]
    base: str = "string"
    facets: Facets = field(default_factory=Facets)

    def problems(self, value: str, schema: Optional["Schema"] = None) -> list[str]:
        """Validate ``value``, following base-type chains through ``schema``."""
        issues: list[str] = []
        base = strip_prefix(self.base)
        if is_builtin(base):
            if not check_builtin(base, value):
                issues.append(f"value {value!r} is not a valid {base}")
        elif schema is not None:
            base_type = schema.simple_types.get(base)
            if base_type is not None:
                issues.extend(base_type.problems(value, schema))
        issues.extend(self.facets.problems(value))
        return issues


@dataclass
class AttributeDeclaration:
    """An attribute allowed (or required) on a complex type."""

    name: str
    type_name: str = "string"
    required: bool = False
    default: Optional[str] = None
    fixed: Optional[str] = None
    simple_type: Optional[SimpleType] = None


@dataclass
class ElementDeclaration:
    """An element declaration (global or local).

    ``type_name`` references a built-in, a named simple type or a named
    complex type; alternatively ``complex_type`` / ``simple_type`` hold
    an anonymous inline type.  ``searchable`` carries the U-P2P
    annotation that marks the field for indexing; ``attachment`` marks
    ``anyURI`` fields whose referenced files are downloaded alongside
    the object (paper §IV-C.1).
    """

    name: str
    type_name: Optional[str] = None
    complex_type: Optional["ComplexType"] = None
    simple_type: Optional[SimpleType] = None
    occurrence: Occurrence = field(default_factory=Occurrence)
    searchable: bool = False
    attachment: bool = False
    default: Optional[str] = None
    documentation: str = ""

    @property
    def is_complex(self) -> bool:
        return self.complex_type is not None

    def resolved_type_name(self) -> str:
        """The referenced type name without prefix ('' for inline types)."""
        return strip_prefix(self.type_name) if self.type_name else ""


ParticleItem = Union[ElementDeclaration, "Particle"]


@dataclass
class Particle:
    """A content-model group: ``sequence``, ``choice`` or ``all``."""

    kind: str = "sequence"
    items: list[ParticleItem] = field(default_factory=list)
    occurrence: Occurrence = field(default_factory=Occurrence)

    def element_declarations(self) -> Iterator[ElementDeclaration]:
        """Yield every element declaration in this group, recursively."""
        for item in self.items:
            if isinstance(item, ElementDeclaration):
                yield item
            else:
                yield from item.element_declarations()

    def find_element(self, name: str) -> Optional[ElementDeclaration]:
        for declaration in self.element_declarations():
            if declaration.name == name:
                return declaration
        return None


@dataclass
class ComplexType:
    """A complex type: a particle plus attribute declarations."""

    name: Optional[str]
    particle: Optional[Particle] = None
    attributes: list[AttributeDeclaration] = field(default_factory=list)
    mixed: bool = False
    simple_content_base: Optional[str] = None

    def element_declarations(self) -> Iterator[ElementDeclaration]:
        if self.particle is not None:
            yield from self.particle.element_declarations()

    def attribute(self, name: str) -> Optional[AttributeDeclaration]:
        for attribute in self.attributes:
            if attribute.name == name:
                return attribute
        return None


@dataclass
class FieldInfo:
    """A flattened leaf field of a schema, used by forms and the index.

    ``path`` is the element path below the root element (e.g.
    ``solution/diagram``), ``type_name`` the resolved simple type and
    ``searchable`` whether the field participates in search queries.
    """

    path: str
    name: str
    type_name: str
    searchable: bool
    attachment: bool
    repeated: bool
    optional: bool
    enumeration: list[str] = field(default_factory=list)
    documentation: str = ""

    @property
    def label(self) -> str:
        """A human-friendly label derived from the element name."""
        words = re.sub(r"(?<!^)(?=[A-Z])", " ", self.name.replace("_", " ").replace("-", " "))
        return words[:1].upper() + words[1:]


class Schema:
    """A parsed schema: global elements plus named type definitions."""

    def __init__(self, target_namespace: Optional[str] = None) -> None:
        self.target_namespace = target_namespace
        self.elements: dict[str, ElementDeclaration] = {}
        self.complex_types: dict[str, ComplexType] = {}
        self.simple_types: dict[str, SimpleType] = {}
        self.annotations: list[str] = []

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def add_element(self, declaration: ElementDeclaration) -> ElementDeclaration:
        if declaration.name in self.elements:
            raise SchemaError(f"duplicate global element {declaration.name!r}")
        self.elements[declaration.name] = declaration
        return declaration

    def add_complex_type(self, definition: ComplexType) -> ComplexType:
        if not definition.name:
            raise SchemaError("global complex types must be named")
        if definition.name in self.complex_types:
            raise SchemaError(f"duplicate complexType {definition.name!r}")
        self.complex_types[definition.name] = definition
        return definition

    def add_simple_type(self, definition: SimpleType) -> SimpleType:
        if not definition.name:
            raise SchemaError("global simple types must be named")
        if definition.name in self.simple_types:
            raise SchemaError(f"duplicate simpleType {definition.name!r}")
        self.simple_types[definition.name] = definition
        return definition

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def root_element(self) -> ElementDeclaration:
        """The first global element declaration — the shared object's root."""
        if not self.elements:
            raise SchemaError("schema defines no global elements")
        return next(iter(self.elements.values()))

    def resolve_complex_type(self, declaration: ElementDeclaration) -> Optional[ComplexType]:
        """Return the complex type governing ``declaration``, if any."""
        if declaration.complex_type is not None:
            return declaration.complex_type
        if declaration.type_name:
            return self.complex_types.get(declaration.resolved_type_name())
        return None

    def resolve_simple_type(self, declaration: ElementDeclaration) -> Optional[SimpleType]:
        """Return the simple type governing ``declaration``, if any."""
        if declaration.simple_type is not None:
            return declaration.simple_type
        if declaration.type_name:
            name = declaration.resolved_type_name()
            if name in self.simple_types:
                return self.simple_types[name]
            if is_builtin(name):
                return SimpleType(name=None, base=name)
        return None

    # ------------------------------------------------------------------
    # Flattened field view (drives forms, search and indexing)
    # ------------------------------------------------------------------
    def fields(self, root: Optional[ElementDeclaration] = None) -> list[FieldInfo]:
        """Return the leaf fields of the (default: root) element, in order."""
        declaration = root or self.root_element()
        collected: list[FieldInfo] = []
        self._collect_fields(declaration, prefix="", out=collected, seen=set())
        return collected

    def searchable_fields(self, root: Optional[ElementDeclaration] = None) -> list[FieldInfo]:
        """Return only fields marked searchable.

        If the schema author marked *no* field as searchable every leaf
        field is considered searchable — matching the prototype's
        behaviour where unannotated schemas remained usable.
        """
        all_fields = self.fields(root)
        marked = [info for info in all_fields if info.searchable]
        return marked if marked else all_fields

    def attachment_fields(self, root: Optional[ElementDeclaration] = None) -> list[FieldInfo]:
        """Return fields flagged as file attachments."""
        return [info for info in self.fields(root) if info.attachment]

    def field_by_path(self, path: str) -> Optional[FieldInfo]:
        for info in self.fields():
            if info.path == path:
                return info
        return None

    def _collect_fields(
        self,
        declaration: ElementDeclaration,
        prefix: str,
        out: list[FieldInfo],
        seen: set[str],
        *,
        depth: int = 0,
    ) -> None:
        if depth > 12:
            return
        complex_type = self.resolve_complex_type(declaration)
        if complex_type is None or complex_type.particle is None:
            path = f"{prefix}{declaration.name}" if prefix else declaration.name
            simple = self.resolve_simple_type(declaration)
            enumeration = list(simple.facets.enumeration) if simple is not None else []
            type_name = declaration.resolved_type_name() or (
                simple.base if simple is not None else "string"
            )
            out.append(
                FieldInfo(
                    path=path,
                    name=declaration.name,
                    type_name=type_name or "string",
                    searchable=declaration.searchable,
                    attachment=declaration.attachment,
                    repeated=declaration.occurrence.is_repeated,
                    optional=declaration.occurrence.is_optional,
                    enumeration=enumeration,
                    documentation=declaration.documentation,
                )
            )
            return
        type_key = complex_type.name or id(complex_type)
        marker = f"{declaration.name}:{type_key}"
        if marker in seen:
            return
        seen.add(marker)
        child_prefix = f"{prefix}{declaration.name}/" if depth > 0 else ""
        for child in complex_type.element_declarations():
            self._collect_fields(child, child_prefix, out, seen, depth=depth + 1)
        seen.discard(marker)

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """A short human-readable inventory of the schema."""
        root = self.root_element()
        lines = [f"root element: {root.name}"]
        for info in self.fields():
            flags = []
            if info.searchable:
                flags.append("searchable")
            if info.attachment:
                flags.append("attachment")
            if info.repeated:
                flags.append("repeated")
            if info.optional:
                flags.append("optional")
            suffix = f" ({', '.join(flags)})" if flags else ""
            lines.append(f"  {info.path}: {info.type_name}{suffix}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Schema elements={list(self.elements)} "
            f"complexTypes={list(self.complex_types)} simpleTypes={list(self.simple_types)}>"
        )
