"""XML Schema substrate (the validating half of the Xerces substitute).

U-P2P's central idea is that *the schema is the application*: an XML
Schema document describing a shared resource is enough to generate the
Create / Search / View functions of a file-sharing community.  This
package provides the schema machinery:

* :mod:`repro.schema.datatypes` — the built-in simple types
  (``xsd:string``, ``xsd:anyURI`` …) with validation and canonical
  lexical forms.
* :mod:`repro.schema.model` — the schema component model: element
  declarations, complex and simple types, particles and attributes,
  plus the U-P2P ``searchable`` annotation used for index filtering.
* :mod:`repro.schema.parser` — parses XSD documents into the model.
* :mod:`repro.schema.validator` — validates instance documents and
  reports precise errors.
* :mod:`repro.schema.builder` — programmatic schema construction, the
  substitute for the paper's web-based schema-generation tool.
* :mod:`repro.schema.instance` — instance skeleton generation and
  random instance synthesis used by tests and workloads.
"""

from repro.schema.builder import SchemaBuilder
from repro.schema.errors import SchemaError, SchemaParseError, ValidationError
from repro.schema.model import (
    AttributeDeclaration,
    ComplexType,
    ElementDeclaration,
    Occurrence,
    Particle,
    Schema,
    SimpleType,
)
from repro.schema.parser import parse_schema, parse_schema_text
from repro.schema.validator import ValidationReport, validate

__all__ = [
    "Schema",
    "ElementDeclaration",
    "ComplexType",
    "SimpleType",
    "AttributeDeclaration",
    "Particle",
    "Occurrence",
    "SchemaBuilder",
    "SchemaError",
    "SchemaParseError",
    "ValidationError",
    "ValidationReport",
    "parse_schema",
    "parse_schema_text",
    "validate",
]
