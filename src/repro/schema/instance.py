"""Instance-document helpers: skeletons, construction and synthesis.

The Create function of a community turns a flat mapping of field values
into a schema-conformant XML object; tests and workloads additionally
need a way to synthesize plausible random instances.  Both live here.
"""

from __future__ import annotations

import random
import string
from typing import Mapping, Optional, Sequence, Union

from repro.schema.datatypes import strip_prefix
from repro.schema.errors import SchemaError
from repro.schema.model import FieldInfo, Schema
from repro.xmlkit.dom import Element

FieldValues = Mapping[str, Union[str, Sequence[str]]]


def build_instance(schema: Schema, values: FieldValues, *, root: Optional[str] = None) -> Element:
    """Build an instance element from ``values`` keyed by field path.

    Values may be strings or sequences of strings (for repeated fields).
    Fields that are optional and absent from ``values`` are omitted;
    required fields missing from ``values`` are created empty so the
    validator can point at them.
    """
    declaration = schema.elements.get(root) if root else schema.root_element()
    if declaration is None:
        raise SchemaError(f"schema does not declare element {root!r}")
    known_paths = {info.path for info in schema.fields(declaration)}
    unknown = [path for path in values if path not in known_paths]
    if unknown:
        raise SchemaError(f"unknown field paths: {', '.join(sorted(unknown))}")
    element = Element(declaration.name)
    for info in schema.fields(declaration):
        raw = values.get(info.path)
        if raw is None:
            if info.optional:
                continue
            raw = [""]
        items = [raw] if isinstance(raw, str) else list(raw)
        for value in items:
            _set_field(element, info.path, str(value))
    return element


def _set_field(root: Element, path: str, value: str) -> None:
    parts = path.split("/")
    node = root
    for part in parts[:-1]:
        existing = node.find(part)
        node = existing if existing is not None else node.make_child(part)
    node.make_child(parts[-1], text=value)


def instance_skeleton(schema: Schema, *, root: Optional[str] = None) -> Element:
    """Return an empty instance with one element per field (a form template)."""
    declaration = schema.elements.get(root) if root else schema.root_element()
    if declaration is None:
        raise SchemaError(f"schema does not declare element {root!r}")
    values = {info.path: info.enumeration[0] if info.enumeration else "" for info in schema.fields(declaration)}
    return build_instance(schema, values, root=root)


def extract_values(schema: Schema, instance: Element) -> dict[str, list[str]]:
    """Flatten an instance back into path → values (inverse of build_instance)."""
    result: dict[str, list[str]] = {}
    for info in schema.fields():
        values = _read_field(instance, info.path)
        if values:
            result[info.path] = values
    return result


def _read_field(root: Element, path: str) -> list[str]:
    nodes = [root]
    for part in path.split("/"):
        next_nodes: list[Element] = []
        for node in nodes:
            next_nodes.extend(node.find_all(part))
        nodes = next_nodes
    return [node.text_content().strip() for node in nodes]


# ----------------------------------------------------------------------
# Random instance synthesis (tests + workloads)
# ----------------------------------------------------------------------
_WORDS = (
    "alpha bravo charlie delta echo foxtrot golf hotel india juliet kilo lima "
    "mike november oscar papa quebec romeo sierra tango uniform victor whiskey "
    "pattern factory observer bridge proxy singleton composite adapter strategy "
    "molecule benzene carbon oxygen helix genome exon intron sonata quartet remix"
).split()


class InstanceSynthesizer:
    """Generates random but schema-valid instance documents."""

    def __init__(self, schema: Schema, *, seed: int = 0) -> None:
        self._schema = schema
        self._random = random.Random(seed)

    def synthesize(self, *, overrides: Optional[FieldValues] = None) -> Element:
        """Create one random instance, optionally pinning some field values."""
        values: dict[str, Union[str, list[str]]] = {}
        for info in self._schema.fields():
            count = self._random.randint(1, 3) if info.repeated else 1
            values[info.path] = [self._value_for(info) for _ in range(count)]
        if overrides:
            values.update({path: value for path, value in overrides.items()})
        return build_instance(self._schema, values)

    def corpus(self, size: int) -> list[Element]:
        """Create ``size`` random instances."""
        return [self.synthesize() for _ in range(size)]

    # ------------------------------------------------------------------
    def _value_for(self, info: FieldInfo) -> str:
        if info.enumeration:
            return self._random.choice(info.enumeration)
        type_name = strip_prefix(info.type_name)
        if type_name in ("integer", "int", "long", "short", "nonNegativeInteger", "positiveInteger"):
            return str(self._random.randint(1, 5000))
        if type_name in ("decimal", "float", "double"):
            return f"{self._random.uniform(0, 1000):.3f}"
        if type_name == "boolean":
            return self._random.choice(["true", "false"])
        if type_name == "date":
            return f"{self._random.randint(1995, 2002):04d}-{self._random.randint(1, 12):02d}-{self._random.randint(1, 28):02d}"
        if type_name == "dateTime":
            return f"2002-{self._random.randint(1, 12):02d}-{self._random.randint(1, 28):02d}T12:00:00Z"
        if type_name == "gYear":
            return str(self._random.randint(1980, 2002))
        if type_name == "anyURI":
            host = self._random.choice(["files.example.org", "repo.carleton.ca", "peer.local"])
            name = "".join(self._random.choices(string.ascii_lowercase, k=8))
            return f"http://{host}/{name}.dat"
        word_count = self._random.randint(1, 5)
        return " ".join(self._random.choice(_WORDS) for _ in range(word_count))
