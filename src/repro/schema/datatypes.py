"""Built-in XML Schema simple datatypes.

Only the lexical checking that U-P2P relies on is implemented: the
datatypes used by the community schema of the paper (``string``,
``anyURI``) plus the numeric, boolean, date and token types that the
bundled example communities (molecules, genes, species, MP3s, design
patterns) need for their attributes.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Optional

XSD_PREFIX = "xsd"

_INTEGER_RE = re.compile(r"^[+-]?\d+$")
_DECIMAL_RE = re.compile(r"^[+-]?(\d+(\.\d*)?|\.\d+)$")
_FLOAT_RE = re.compile(r"^([+-]?(\d+(\.\d*)?|\.\d+)([eE][+-]?\d+)?|INF|-INF|NaN)$")
_DATE_RE = re.compile(r"^-?\d{4,}-\d{2}-\d{2}(Z|[+-]\d{2}:\d{2})?$")
_TIME_RE = re.compile(r"^\d{2}:\d{2}:\d{2}(\.\d+)?(Z|[+-]\d{2}:\d{2})?$")
_DATETIME_RE = re.compile(
    r"^-?\d{4,}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}(\.\d+)?(Z|[+-]\d{2}:\d{2})?$"
)
_GYEAR_RE = re.compile(r"^-?\d{4,}(Z|[+-]\d{2}:\d{2})?$")
_DURATION_RE = re.compile(
    r"^-?P(?=.)(\d+Y)?(\d+M)?(\d+D)?(T(?=.)(\d+H)?(\d+M)?(\d+(\.\d+)?S)?)?$"
)
_NCNAME_RE = re.compile(r"^[A-Za-z_][\w.\-]*$")
_NMTOKEN_RE = re.compile(r"^[\w.\-:]+$")
_LANGUAGE_RE = re.compile(r"^[a-zA-Z]{1,8}(-[a-zA-Z0-9]{1,8})*$")
_BASE64_RE = re.compile(r"^[A-Za-z0-9+/=\s]*$")
_HEX_RE = re.compile(r"^([0-9a-fA-F]{2})*$")
# Deliberately permissive: anyURI allows almost anything non-space per the spec.
_ANYURI_RE = re.compile(r"^\S*$")


@dataclass(frozen=True)
class BuiltinType:
    """One built-in simple type: a name plus a lexical check."""

    name: str
    check: Callable[[str], bool]
    description: str = ""
    example: str = ""

    def is_valid(self, value: str) -> bool:
        """Return True if ``value`` is a legal lexical form of this type."""
        try:
            return bool(self.check(value))
        except (ValueError, TypeError):
            return False


def _check_boolean(value: str) -> bool:
    return value.strip() in ("true", "false", "1", "0")


def _bounded_integer(low: Optional[int], high: Optional[int]) -> Callable[[str], bool]:
    def check(value: str) -> bool:
        value = value.strip()
        if not _INTEGER_RE.match(value):
            return False
        number = int(value)
        if low is not None and number < low:
            return False
        if high is not None and number > high:
            return False
        return True

    return check


def _regex_check(pattern: re.Pattern[str]) -> Callable[[str], bool]:
    return lambda value: bool(pattern.match(value.strip()))


_BUILTINS: dict[str, BuiltinType] = {}


def _register(name: str, check: Callable[[str], bool], description: str, example: str) -> None:
    _BUILTINS[name] = BuiltinType(name, check, description, example)


_register("string", lambda value: True, "any character data", "Design Patterns")
_register("normalizedString", lambda value: "\n" not in value and "\t" not in value,
          "string without tabs or newlines", "Gamma et al.")
_register("token", lambda value: value == " ".join(value.split()),
          "whitespace-collapsed string", "creational pattern")
_register("language", _regex_check(_LANGUAGE_RE), "RFC 3066 language code", "en-CA")
_register("boolean", _check_boolean, "true/false/1/0", "true")
_register("decimal", _regex_check(_DECIMAL_RE), "arbitrary precision decimal", "3.14")
_register("integer", _regex_check(_INTEGER_RE), "arbitrary precision integer", "42")
_register("nonNegativeInteger", _bounded_integer(0, None), "integer >= 0", "7")
_register("positiveInteger", _bounded_integer(1, None), "integer >= 1", "1")
_register("nonPositiveInteger", _bounded_integer(None, 0), "integer <= 0", "-3")
_register("negativeInteger", _bounded_integer(None, -1), "integer <= -1", "-1")
_register("long", _bounded_integer(-(2 ** 63), 2 ** 63 - 1), "64-bit integer", "1024")
_register("int", _bounded_integer(-(2 ** 31), 2 ** 31 - 1), "32-bit integer", "1999")
_register("short", _bounded_integer(-(2 ** 15), 2 ** 15 - 1), "16-bit integer", "128")
_register("byte", _bounded_integer(-128, 127), "8-bit integer", "16")
_register("unsignedLong", _bounded_integer(0, 2 ** 64 - 1), "unsigned 64-bit integer", "10")
_register("unsignedInt", _bounded_integer(0, 2 ** 32 - 1), "unsigned 32-bit integer", "10")
_register("unsignedShort", _bounded_integer(0, 2 ** 16 - 1), "unsigned 16-bit integer", "10")
_register("unsignedByte", _bounded_integer(0, 255), "unsigned 8-bit integer", "10")
_register("float", _regex_check(_FLOAT_RE), "32-bit float", "6.02e23")
_register("double", _regex_check(_FLOAT_RE), "64-bit float", "2.5e-3")
_register("date", _regex_check(_DATE_RE), "ISO 8601 date", "2002-02-14")
_register("time", _regex_check(_TIME_RE), "ISO 8601 time", "12:30:00")
_register("dateTime", _regex_check(_DATETIME_RE), "ISO 8601 timestamp", "2002-02-14T12:30:00Z")
_register("gYear", _regex_check(_GYEAR_RE), "Gregorian year", "2002")
_register("duration", _regex_check(_DURATION_RE), "ISO 8601 duration", "P1Y2M3DT4H")
_register("anyURI", _regex_check(_ANYURI_RE), "URI reference", "http://example.org/pattern.xsd")
_register("QName", _regex_check(_NMTOKEN_RE), "qualified name", "xsd:string")
_register("NCName", _regex_check(_NCNAME_RE), "non-colonized name", "community")
_register("ID", _regex_check(_NCNAME_RE), "document-unique identifier", "node-1")
_register("IDREF", _regex_check(_NCNAME_RE), "reference to an ID", "node-1")
_register("NMTOKEN", _regex_check(_NMTOKEN_RE), "name token", "creational")
_register("Name", _regex_check(_NMTOKEN_RE), "XML name", "pattern")
_register("base64Binary", _regex_check(_BASE64_RE), "base64-encoded bytes", "aGVsbG8=")
_register("hexBinary", _regex_check(_HEX_RE), "hex-encoded bytes", "cafebabe")
_register("anySimpleType", lambda value: True, "any simple value", "anything")


def builtin_type_names() -> list[str]:
    """Return the names of every supported built-in type."""
    return sorted(_BUILTINS)


def is_builtin(name: str) -> bool:
    """Return True if ``name`` (with or without prefix) is a built-in type."""
    return strip_prefix(name) in _BUILTINS


def get_builtin(name: str) -> Optional[BuiltinType]:
    """Look up a built-in type by (possibly prefixed) name."""
    return _BUILTINS.get(strip_prefix(name))


def check_builtin(name: str, value: str) -> bool:
    """Validate ``value`` against built-in type ``name``.

    Unknown type names are treated as ``string`` — the paper's prototype
    was similarly lenient so that hand-written schemas with typos still
    produced working communities.
    """
    builtin = get_builtin(name)
    if builtin is None:
        return True
    return builtin.is_valid(value)


def strip_prefix(name: str) -> str:
    """Remove a namespace prefix (``xsd:string`` → ``string``)."""
    return name.split(":", 1)[1] if ":" in name else name
