"""Parse XML Schema documents into the component model.

The parser understands the XSD constructs used by U-P2P community
schemas — exactly the vocabulary of the paper's Fig. 3 plus the
constructs needed by the bundled example communities:

``schema``, ``element``, ``complexType``, ``sequence``, ``choice``,
``all``, ``simpleType``, ``restriction``, ``enumeration``, ``pattern``,
length and value facets, ``attribute``, ``annotation`` /
``documentation`` and the U-P2P extension attributes ``searchable`` and
``attachment`` (any prefix, e.g. ``up2p:searchable="true"``).
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from repro.schema.errors import SchemaParseError
from repro.schema.model import (
    AttributeDeclaration,
    ComplexType,
    ElementDeclaration,
    Facets,
    Occurrence,
    Particle,
    Schema,
    SimpleType,
)
from repro.xmlkit.dom import Document, Element
from repro.xmlkit.errors import XMLParseError
from repro.xmlkit.parser import parse as parse_xml

_GROUP_KINDS = ("sequence", "choice", "all")
_TRUE_VALUES = ("true", "1", "yes")


def parse_schema_text(text: str) -> Schema:
    """Parse an XSD document given as a string."""
    try:
        document = parse_xml(text, check_namespaces=False, keep_whitespace_text=False)
    except XMLParseError as error:
        raise SchemaParseError(f"schema document is not well-formed XML: {error}") from error
    return parse_schema(document)


def parse_schema_file(path: Union[str, Path]) -> Schema:
    """Parse the XSD file at ``path``."""
    return parse_schema_text(Path(path).read_text(encoding="utf-8"))


def parse_schema(document: Union[Document, Element]) -> Schema:
    """Parse a pre-parsed XML document into a :class:`Schema`."""
    root = document.root if isinstance(document, Document) else document
    if root.local_name != "schema":
        raise SchemaParseError(
            f"expected a <schema> document, found <{root.local_name}>"
        )
    schema = Schema(target_namespace=root.get("targetNamespace"))
    for child in root.children:
        name = child.local_name
        if name == "element":
            schema.add_element(_parse_element(child))
        elif name == "complexType":
            schema.add_complex_type(_parse_complex_type(child, require_name=True))
        elif name == "simpleType":
            schema.add_simple_type(_parse_simple_type(child, require_name=True))
        elif name == "annotation":
            schema.annotations.append(_documentation_text(child))
        elif name in ("import", "include"):
            # Cross-schema composition is out of scope; recorded but ignored.
            schema.annotations.append(f"unresolved {name}: {child.get('schemaLocation', '')}")
        else:
            raise SchemaParseError(f"unsupported top-level schema construct <{name}>")
    if not schema.elements:
        raise SchemaParseError("schema declares no global elements")
    return schema


# ----------------------------------------------------------------------
def _parse_element(node: Element) -> ElementDeclaration:
    name = node.get("name")
    if not name:
        raise SchemaParseError("element declaration is missing the 'name' attribute")
    declaration = ElementDeclaration(
        name=name,
        type_name=node.get("type"),
        occurrence=Occurrence.parse(node.get("minOccurs"), node.get("maxOccurs")),
        searchable=_flag(node, "searchable"),
        attachment=_flag(node, "attachment"),
        default=node.get("default"),
    )
    for child in node.children:
        kind = child.local_name
        if kind == "complexType":
            declaration.complex_type = _parse_complex_type(child, require_name=False)
        elif kind == "simpleType":
            declaration.simple_type = _parse_simple_type(child, require_name=False)
        elif kind == "annotation":
            declaration.documentation = _documentation_text(child)
        else:
            raise SchemaParseError(
                f"unsupported construct <{kind}> inside element {name!r}"
            )
    if declaration.type_name and (declaration.complex_type or declaration.simple_type):
        raise SchemaParseError(
            f"element {name!r} has both a 'type' reference and an inline type"
        )
    return declaration


def _parse_complex_type(node: Element, *, require_name: bool) -> ComplexType:
    name = node.get("name")
    if require_name and not name:
        raise SchemaParseError("global complexType is missing the 'name' attribute")
    definition = ComplexType(
        name=name,
        mixed=(node.get("mixed", "false") in _TRUE_VALUES),
    )
    for child in node.children:
        kind = child.local_name
        if kind in _GROUP_KINDS:
            if definition.particle is not None:
                raise SchemaParseError(
                    f"complexType {name or '(anonymous)'} has more than one content group"
                )
            definition.particle = _parse_particle(child)
        elif kind == "attribute":
            definition.attributes.append(_parse_attribute(child))
        elif kind == "annotation":
            continue
        elif kind == "simpleContent":
            base, attributes = _parse_simple_content(child)
            definition.simple_content_base = base
            definition.attributes.extend(attributes)
        else:
            raise SchemaParseError(
                f"unsupported construct <{kind}> inside complexType {name or '(anonymous)'}"
            )
    return definition


def _parse_particle(node: Element) -> Particle:
    particle = Particle(
        kind=node.local_name,
        occurrence=Occurrence.parse(node.get("minOccurs"), node.get("maxOccurs")),
    )
    for child in node.children:
        kind = child.local_name
        if kind == "element":
            particle.items.append(_parse_element(child))
        elif kind in _GROUP_KINDS:
            particle.items.append(_parse_particle(child))
        elif kind == "annotation":
            continue
        else:
            raise SchemaParseError(f"unsupported construct <{kind}> inside <{node.local_name}>")
    return particle


def _parse_simple_type(node: Element, *, require_name: bool) -> SimpleType:
    name = node.get("name")
    if require_name and not name:
        raise SchemaParseError("global simpleType is missing the 'name' attribute")
    restriction = node.find("restriction")
    if restriction is None:
        # Lists/unions are out of scope; degrade to an unrestricted string.
        return SimpleType(name=name, base="string")
    base = restriction.get("base", "string")
    facets = Facets()
    for facet in restriction.children:
        kind = facet.local_name
        value = facet.get("value", "")
        if kind == "enumeration":
            facets.enumeration.append(value)
        elif kind == "pattern":
            facets.pattern = value
        elif kind == "length":
            facets.length = int(value)
        elif kind == "minLength":
            facets.min_length = int(value)
        elif kind == "maxLength":
            facets.max_length = int(value)
        elif kind == "minInclusive":
            facets.min_inclusive = float(value)
        elif kind == "maxInclusive":
            facets.max_inclusive = float(value)
        elif kind == "minExclusive":
            facets.min_exclusive = float(value)
        elif kind == "maxExclusive":
            facets.max_exclusive = float(value)
        elif kind == "whiteSpace":
            facets.whitespace = value
        elif kind == "annotation":
            continue
        else:
            raise SchemaParseError(f"unsupported restriction facet <{kind}>")
    return SimpleType(name=name, base=base, facets=facets)


def _parse_attribute(node: Element) -> AttributeDeclaration:
    name = node.get("name")
    if not name:
        raise SchemaParseError("attribute declaration is missing the 'name' attribute")
    declaration = AttributeDeclaration(
        name=name,
        type_name=node.get("type", "string"),
        required=(node.get("use") == "required"),
        default=node.get("default"),
        fixed=node.get("fixed"),
    )
    inline = node.find("simpleType")
    if inline is not None:
        declaration.simple_type = _parse_simple_type(inline, require_name=False)
    return declaration


def _parse_simple_content(node: Element) -> tuple[Optional[str], list[AttributeDeclaration]]:
    extension = node.find("extension") or node.find("restriction")
    if extension is None:
        return None, []
    attributes = [_parse_attribute(child) for child in extension.find_all("attribute")]
    return extension.get("base"), attributes


def _documentation_text(annotation: Element) -> str:
    parts = [doc.text_content().strip() for doc in annotation.find_all("documentation")]
    return "\n".join(part for part in parts if part)


def _flag(node: Element, local_name: str) -> bool:
    value = node.get_local(local_name)
    return value is not None and value.strip().lower() in _TRUE_VALUES
