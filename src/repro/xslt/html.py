"""HTML serialization of XSLT result trees.

The original U-P2P rendered its Create / Search / View screens as HTML
in a web browser.  The ``html`` output method differs from XML in a few
ways that matter for forms: void elements (``<input>``, ``<br>`` …) are
never closed, non-void empty elements get explicit end tags, and
boolean attributes may be minimized.
"""

from __future__ import annotations

from typing import Sequence, Union

from repro.xmlkit.dom import Element
from repro.xmlkit.escape import escape_attribute, escape_text

VOID_ELEMENTS = {
    "area", "base", "br", "col", "embed", "hr", "img", "input",
    "link", "meta", "param", "source", "track", "wbr",
}

_BOOLEAN_ATTRIBUTES = {"checked", "selected", "disabled", "readonly", "multiple", "required"}


def render_html(nodes: Sequence[Union[Element, str]]) -> str:
    """Serialize result-tree nodes as an HTML fragment (or page)."""
    parts: list[str] = []
    for node in nodes:
        if isinstance(node, Element):
            _write_html(node, parts)
        else:
            parts.append(escape_text(node))
    return "".join(parts)


def render_page(body: Union[Element, str], *, title: str = "U-P2P") -> str:
    """Wrap a fragment in a minimal HTML page skeleton."""
    content = render_html([body]) if isinstance(body, Element) else body
    return (
        "<!DOCTYPE html>\n"
        f"<html><head><meta charset=\"utf-8\"><title>{escape_text(title)}</title></head>"
        f"<body>{content}</body></html>"
    )


def _write_html(element: Element, parts: list[str]) -> None:
    tag = element.local_name.lower() if element.prefix in ("", "html") else element.tag
    parts.append(f"<{tag}")
    for name, value in element.attributes.items():
        if name.startswith("xmlns"):
            continue
        if name.lower() in _BOOLEAN_ATTRIBUTES and value in ("", name, "true"):
            parts.append(f" {name.lower()}")
        else:
            parts.append(f' {name}="{escape_attribute(value)}"')
    parts.append(">")
    if tag in VOID_ELEMENTS:
        return
    if element.text:
        parts.append(escape_text(element.text))
    for child in element.children:
        _write_html(child, parts)
        if child.tail:
            parts.append(escape_text(child.tail))
    parts.append(f"</{tag}>")
