"""Error types for the XSLT substrate."""

from __future__ import annotations


class XSLTError(Exception):
    """Raised for malformed stylesheets or failures during transformation."""


class XSLTParseError(XSLTError):
    """Raised when a stylesheet document cannot be interpreted."""


class XSLTRuntimeError(XSLTError):
    """Raised when a transformation cannot be completed."""
