"""The XSLT transformation engine.

The engine interprets the parsed stylesheet against a source tree and
builds a result tree.  It follows XSLT 1.0 processing rules for the
supported subset: template rule matching by priority, built-in rules
for unmatched elements and text, attribute-value templates in literal
result elements, and the ``html`` / ``xml`` / ``text`` output methods.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.xmlkit.dom import Document, Element
from repro.xmlkit.serializer import serialize
from repro.xslt.errors import XSLTRuntimeError
from repro.xslt.expressions import (
    EvalContext,
    evaluate_boolean,
    evaluate_nodes,
    evaluate_string,
)
from repro.xslt.html import render_html
from repro.xslt.model import Stylesheet, TemplateRule
from repro.xslt.parser import _is_xsl
from repro.xslt.patterns import pattern_matches

_MAX_RECURSION = 200


@dataclass
class TransformResult:
    """The result tree of a transformation."""

    nodes: list[Union[Element, str]] = field(default_factory=list)
    output_method: str = "xml"

    @property
    def root(self) -> Optional[Element]:
        """The first element node of the result, if any."""
        for node in self.nodes:
            if isinstance(node, Element):
                return node
        return None

    def to_text(self) -> str:
        """Concatenated text content of the result tree."""
        parts = []
        for node in self.nodes:
            parts.append(node.text_content() if isinstance(node, Element) else node)
        return "".join(parts)

    def to_xml(self) -> str:
        """Serialize the result as XML (no declaration)."""
        parts = []
        for node in self.nodes:
            if isinstance(node, Element):
                parts.append(serialize(node, xml_declaration=False))
            else:
                parts.append(node)
        return "".join(parts)

    def to_html(self) -> str:
        """Serialize the result as HTML."""
        return render_html(self.nodes)

    def serialize(self) -> str:
        """Serialize according to the stylesheet's output method."""
        if self.output_method == "html":
            return self.to_html()
        if self.output_method == "text":
            return self.to_text()
        return self.to_xml()


class Transformer:
    """Applies one stylesheet to source documents."""

    def __init__(self, stylesheet: Stylesheet) -> None:
        self._stylesheet = stylesheet

    def transform(
        self,
        source: Union[Document, Element],
        parameters: Optional[dict[str, str]] = None,
    ) -> TransformResult:
        """Transform ``source`` and return the result tree."""
        root = source.root if isinstance(source, Document) else source
        variables = dict(self._stylesheet.global_variables)
        if parameters:
            variables.update(parameters)
        result = TransformResult(output_method=self._stylesheet.output_method)
        output: list[Union[Element, str]] = []
        # The "/" template's context is the document node: wrap the root
        # element in a synthetic document element for the duration of the
        # transformation so that paths like "community/name" resolve the
        # way XSLT expects, then restore the tree.
        original_parent = root.parent
        document_node = Element("#document")
        document_node.children = [root]
        root.parent = document_node
        try:
            self._apply_to_root(document_node, variables, output)
        finally:
            root.parent = original_parent
        result.nodes = [node for node in output if not (isinstance(node, str) and not node)]
        return result

    # ------------------------------------------------------------------
    def _apply_to_root(self, root: Element, variables: dict[str, str], output: list) -> None:
        rule = self._find_rule_for_root()
        context = EvalContext(node=root, position=1, size=1, variables=variables)
        if rule is not None:
            self._instantiate(rule.body, rule.body_text, context, output, depth=0)
        else:
            self._apply_templates([root], context, output, mode="", depth=0)

    def _find_rule_for_root(self) -> Optional[TemplateRule]:
        for rule in self._stylesheet.rules_for_mode(""):
            if rule.match.strip() == "/":
                return rule
        return None

    def _find_rule(self, node: Union[Element, str], mode: str) -> Optional[TemplateRule]:
        if isinstance(node, Element) and node.tag == "#document":
            # Only the "/" pattern may match the document node; it is
            # handled by _find_rule_for_root, so fall through to the
            # built-in rule (recurse into the document element).
            return None
        for rule in self._stylesheet.rules_for_mode(mode):
            if rule.match.strip() == "/":
                continue
            if pattern_matches(rule.match, node):
                return rule
        return None

    # ------------------------------------------------------------------
    def _apply_templates(
        self,
        nodes: list[Union[Element, str]],
        context: EvalContext,
        output: list,
        *,
        mode: str,
        depth: int,
        with_params: Optional[dict[str, str]] = None,
    ) -> None:
        if depth > _MAX_RECURSION:
            raise XSLTRuntimeError("template recursion limit exceeded")
        size = len(nodes)
        for position, node in enumerate(nodes, start=1):
            rule = self._find_rule(node, mode)
            if isinstance(node, str):
                if rule is None:
                    output.append(node)
                    continue
                child_context = EvalContext(
                    node=context.node, position=position, size=size, variables=dict(context.variables)
                )
            else:
                child_context = EvalContext(
                    node=node, position=position, size=size, variables=dict(context.variables)
                )
            if rule is None:
                # Built-in rule: recurse into children and text.
                assert isinstance(node, Element)
                children: list[Union[Element, str]] = []
                if node.text.strip():
                    children.append(node.text.strip())
                for child in node.children:
                    children.append(child)
                    if child.tail.strip():
                        children.append(child.tail.strip())
                self._apply_templates(children, child_context, output, mode=mode, depth=depth + 1)
                continue
            if with_params:
                child_context.variables.update(with_params)
            self._instantiate(rule.body, rule.body_text, child_context, output, depth=depth + 1)

    # ------------------------------------------------------------------
    def _instantiate(
        self,
        body: list[Element],
        leading_text: str,
        context: EvalContext,
        output: list,
        *,
        depth: int,
        owner: Optional[Element] = None,
    ) -> None:
        if depth > _MAX_RECURSION:
            raise XSLTRuntimeError("template recursion limit exceeded")
        # XSLT 1.0 whitespace handling: text nodes that are pure whitespace
        # are stripped from the stylesheet; text with content is kept as-is.
        if leading_text.strip():
            output.append(leading_text)
        for node in body:
            self._instantiate_node(node, context, output, depth=depth, owner=owner)
            if node.tail.strip():
                output.append(node.tail)

    def _instantiate_node(self, node: Element, context: EvalContext, output: list, *, depth: int,
                          owner: Optional[Element] = None) -> None:
        if _is_xsl(node):
            self._execute_instruction(node, context, output, depth=depth, owner=owner)
            return
        # Literal result element: copy it, expanding attribute value templates.
        literal = Element(node.tag)
        for name, value in node.attributes.items():
            if name.startswith("xmlns"):
                continue
            literal.set(name, _expand_avt(value, context))
        inner: list[Union[Element, str]] = []
        self._instantiate(node.children, node.text, context, inner, depth=depth + 1, owner=literal)
        _attach(literal, inner)
        output.append(literal)

    # ------------------------------------------------------------------
    def _execute_instruction(self, node: Element, context: EvalContext, output: list, *, depth: int,
                             owner: Optional[Element] = None) -> None:
        name = node.local_name
        if name == "value-of":
            output.append(evaluate_string(node.get("select", "."), context))
        elif name == "text":
            output.append(node.text_content())
        elif name == "apply-templates":
            select = node.get("select")
            mode = node.get("mode", "")
            params = self._collect_with_params(node, context)
            if select:
                nodes = evaluate_nodes(select, context)
            else:
                nodes = list(context.node.children)
                if context.node.text.strip():
                    nodes.insert(0, context.node.text.strip())
            nodes = self._apply_sort(node, nodes, context)
            self._apply_templates(nodes, context, output, mode=mode, depth=depth + 1, with_params=params)
        elif name == "for-each":
            select = node.get("select")
            if not select:
                raise XSLTRuntimeError("xsl:for-each requires a 'select' attribute")
            nodes = self._apply_sort(node, evaluate_nodes(select, context), context)
            size = len(nodes)
            for position, item in enumerate(nodes, start=1):
                item_node = item if isinstance(item, Element) else context.node
                item_context = context.with_node(item_node, position, size)
                if isinstance(item, str):
                    item_context.variables = dict(context.variables)
                    item_context.variables["__text__"] = item
                body = [child for child in node.children if child.local_name != "sort" or not _is_xsl(child)]
                self._instantiate(body, node.text, item_context, output, depth=depth + 1, owner=owner)
        elif name == "if":
            if evaluate_boolean(node.get("test", "false()"), context):
                self._instantiate(node.children, node.text, context, output, depth=depth + 1, owner=owner)
        elif name == "choose":
            for branch in node.children:
                if not _is_xsl(branch):
                    continue
                if branch.local_name == "when" and evaluate_boolean(branch.get("test", "false()"), context):
                    self._instantiate(branch.children, branch.text, context, output, depth=depth + 1, owner=owner)
                    return
                if branch.local_name == "otherwise":
                    self._instantiate(branch.children, branch.text, context, output, depth=depth + 1, owner=owner)
                    return
        elif name == "element":
            element_name = _expand_avt(node.get("name", ""), context)
            if not element_name:
                raise XSLTRuntimeError("xsl:element requires a non-empty 'name'")
            created = Element(element_name)
            inner: list[Union[Element, str]] = []
            self._instantiate(node.children, node.text, context, inner, depth=depth + 1, owner=created)
            _attach(created, inner)
            output.append(created)
        elif name == "attribute":
            attribute_name = _expand_avt(node.get("name", ""), context)
            if not attribute_name:
                raise XSLTRuntimeError("xsl:attribute requires a non-empty 'name'")
            inner = []
            self._instantiate(node.children, node.text, context, inner, depth=depth + 1)
            value = "".join(part if isinstance(part, str) else part.text_content() for part in inner)
            # The attribute belongs to the element currently being
            # constructed (the owner); if there is none, it attaches to
            # the most recently emitted sibling element.
            target = owner if owner is not None else _last_element(output)
            if target is None:
                raise XSLTRuntimeError("xsl:attribute has no element to attach to")
            target.set(attribute_name, value)
        elif name == "copy-of":
            for item in evaluate_nodes(node.get("select", "."), context):
                output.append(item.copy() if isinstance(item, Element) else item)
        elif name == "copy":
            copied = Element(context.node.tag)
            inner = []
            self._instantiate(node.children, node.text, context, inner, depth=depth + 1)
            _attach(copied, inner)
            output.append(copied)
        elif name == "call-template":
            template_name = node.get("name", "")
            rule = self._stylesheet.named_templates.get(template_name)
            if rule is None:
                raise XSLTRuntimeError(f"call-template references unknown template {template_name!r}")
            params = self._collect_with_params(node, context)
            call_context = EvalContext(
                node=context.node,
                position=context.position,
                size=context.size,
                variables={**context.variables, **params},
            )
            self._instantiate(rule.body, rule.body_text, call_context, output, depth=depth + 1)
        elif name == "variable":
            variable_name = node.get("name", "")
            if not variable_name:
                raise XSLTRuntimeError("xsl:variable requires a 'name'")
            if node.get("select"):
                context.variables[variable_name] = evaluate_string(node.get("select", ""), context)
            else:
                inner = []
                self._instantiate(node.children, node.text, context, inner, depth=depth + 1)
                context.variables[variable_name] = "".join(
                    part if isinstance(part, str) else part.text_content() for part in inner
                )
        elif name == "param":
            variable_name = node.get("name", "")
            if variable_name and variable_name not in context.variables:
                context.variables[variable_name] = evaluate_string(node.get("select", "''"), context)
        elif name == "comment":
            pass  # comments are dropped from the result tree
        elif name == "message":
            pass  # diagnostics are intentionally silent
        elif name == "sort":
            pass  # handled by the enclosing for-each / apply-templates
        else:
            raise XSLTRuntimeError(f"unsupported XSLT instruction <xsl:{name}>")

    # ------------------------------------------------------------------
    def _collect_with_params(self, node: Element, context: EvalContext) -> dict[str, str]:
        params: dict[str, str] = {}
        for child in node.children:
            if _is_xsl(child) and child.local_name == "with-param":
                name = child.get("name", "")
                if not name:
                    continue
                if child.get("select"):
                    params[name] = evaluate_string(child.get("select", ""), context)
                else:
                    params[name] = child.text_content().strip()
        return params

    def _apply_sort(
        self,
        instruction: Element,
        nodes: list[Union[Element, str]],
        context: EvalContext,
    ) -> list[Union[Element, str]]:
        sort = next(
            (child for child in instruction.children if _is_xsl(child) and child.local_name == "sort"),
            None,
        )
        if sort is None:
            return nodes
        select = sort.get("select", ".")
        descending = sort.get("order", "ascending") == "descending"
        numeric = sort.get("data-type", "text") == "number"

        def key(item: Union[Element, str]):
            if isinstance(item, Element):
                value = evaluate_string(select, context.with_node(item, 1, 1))
            else:
                value = str(item)
            if numeric:
                try:
                    return float(value)
                except ValueError:
                    return float("inf")
            return value

        return sorted(nodes, key=key, reverse=descending)


# ----------------------------------------------------------------------
def transform(
    stylesheet: Stylesheet,
    source: Union[Document, Element],
    parameters: Optional[dict[str, str]] = None,
) -> TransformResult:
    """Convenience wrapper: apply ``stylesheet`` to ``source``."""
    return Transformer(stylesheet).transform(source, parameters)


def _expand_avt(template: str, context: EvalContext) -> str:
    """Expand attribute value templates: ``"{expr}"`` inside literal attributes."""
    if "{" not in template:
        return template
    parts: list[str] = []
    buffer = ""
    index = 0
    while index < len(template):
        char = template[index]
        if char == "{":
            if index + 1 < len(template) and template[index + 1] == "{":
                buffer += "{"
                index += 2
                continue
            end = template.index("}", index)
            parts.append(buffer)
            buffer = ""
            parts.append(evaluate_string(template[index + 1:end], context))
            index = end + 1
            continue
        if char == "}" and index + 1 < len(template) and template[index + 1] == "}":
            buffer += "}"
            index += 2
            continue
        buffer += char
        index += 1
    parts.append(buffer)
    return "".join(parts)


def _attach(parent: Element, nodes: list[Union[Element, str]]) -> None:
    """Attach a mixed list of elements and strings as the content of ``parent``."""
    for item in nodes:
        if isinstance(item, Element):
            parent.append(item)
        else:
            if parent.children:
                parent.children[-1].tail += item
            else:
                parent.text += item


def _last_element(output: list) -> Optional[Element]:
    for item in reversed(output):
        if isinstance(item, Element):
            return item
    return None
