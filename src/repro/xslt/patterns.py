"""Match-pattern evaluation for template rules.

XSLT match patterns are a restricted form of XPath read right-to-left:
``pattern/name`` matches any ``name`` element whose parent is a
``pattern`` element.  The subset implemented here covers the patterns
used by the default and case-study stylesheets:

* ``/`` — the document root,
* element names, ``*``, ``text()``, ``node()``,
* parent paths (``a/b``) and ancestor paths (``a//b``),
* attribute predicates (``field[@searchable='true']``),
* alternatives (``a | b``).
"""

from __future__ import annotations

from typing import Optional, Union

from repro.xmlkit.dom import Element
from repro.xmlkit.xpath import Predicate, _compile_predicate  # reuse predicate grammar
from repro.xslt.errors import XSLTParseError

_PSEUDO_ROOT = "/"


def pattern_matches(pattern: str, node: Union[Element, str], *, is_root: bool = False) -> bool:
    """Return True if ``node`` matches ``pattern``.

    ``node`` is an element, or a string for text nodes.  ``is_root``
    marks the synthetic document-root context used for the ``/`` pattern.
    """
    pattern = pattern.strip()
    if not pattern:
        return False
    return any(
        _single_pattern_matches(alternative.strip(), node, is_root=is_root)
        for alternative in pattern.split("|")
    )


def _single_pattern_matches(pattern: str, node: Union[Element, str], *, is_root: bool) -> bool:
    if pattern == _PSEUDO_ROOT:
        return is_root
    if isinstance(node, str):
        return pattern in ("text()", "node()")
    if is_root:
        return False
    steps = _split_steps(pattern)
    return _match_steps(steps, node)


def _split_steps(pattern: str) -> list[tuple[str, str]]:
    """Split a pattern into (separator, step) pairs, left to right."""
    steps: list[tuple[str, str]] = []
    buffer = ""
    separator = ""
    index = 0
    if pattern.startswith("//"):
        separator, pattern = "//", pattern[2:]
    elif pattern.startswith("/"):
        separator, pattern = "/", pattern[1:]
    while index < len(pattern):
        char = pattern[index]
        if char == "/":
            if index + 1 < len(pattern) and pattern[index + 1] == "/":
                steps.append((separator, buffer))
                separator, buffer = "//", ""
                index += 2
                continue
            steps.append((separator, buffer))
            separator, buffer = "/", ""
            index += 1
            continue
        buffer += char
        index += 1
    steps.append((separator, buffer))
    if any(not step for _, step in steps):
        raise XSLTParseError(f"cannot parse match pattern {pattern!r}")
    return steps


def _match_steps(steps: list[tuple[str, str]], node: Element) -> bool:
    """Match right-to-left: the last step matches ``node`` itself."""
    separator, step = steps[-1]
    if not _step_matches(step, node):
        return False
    remaining = steps[:-1]
    if not remaining:
        # If the pattern is absolute ("/a/b"), the first step's separator is
        # "/" and the chain must have consumed up to the document root.
        if separator == "/" and len(steps) == 1 and not _is_document_root(node):
            # A single absolute step like "/community" requires node to be root.
            return False
        return True
    parent = node.parent
    if separator == "//":
        ancestor: Optional[Element] = parent
        while ancestor is not None:
            if _match_steps(remaining, ancestor):
                return True
            ancestor = ancestor.parent
        return False
    if parent is None:
        return False
    return _match_steps(remaining, parent)


def _is_document_root(node: Element) -> bool:
    """True when ``node`` is the outermost element of its document.

    During a transformation the engine wraps the source root in a
    synthetic ``#document`` element; both shapes count as "root" here.
    """
    return node.parent is None or node.parent.tag == "#document"


def _step_matches(step: str, node: Element) -> bool:
    step = step.strip()
    predicates: list[Predicate] = []
    while "[" in step:
        open_index = step.index("[")
        close_index = step.index("]", open_index)
        predicates.append(_compile_predicate(step[open_index + 1:close_index].strip()))
        step = step[:open_index] + step[close_index + 1:]
    name = step.strip()
    if name in ("node()", "*"):
        name_ok = True
    elif name == "text()":
        return False
    else:
        name_ok = node.local_name == name or node.tag == name
    if not name_ok:
        return False
    siblings = _siblings_like(node)
    position = siblings.index(node) + 1 if node in siblings else 1
    return all(predicate.matches(node, position, len(siblings)) for predicate in predicates)


def _siblings_like(node: Element) -> list[Element]:
    if node.parent is None:
        return [node]
    return [child for child in node.parent.children if child.local_name == node.local_name]
