"""Stylesheet object model for the XSLT subset."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.xmlkit.dom import Element


@dataclass
class TemplateRule:
    """One ``xsl:template`` rule.

    ``match`` is a match pattern (may be empty for named templates),
    ``name`` the template name (may be empty for matching templates).
    ``body`` holds the literal result elements and XSLT instructions of
    the template, still as raw :class:`~repro.xmlkit.dom.Element` nodes;
    the engine interprets them at transformation time.
    """

    match: str = ""
    name: str = ""
    priority: Optional[float] = None
    mode: str = ""
    params: list[str] = field(default_factory=list)
    body: list[Element] = field(default_factory=list)
    body_text: str = ""

    def default_priority(self) -> float:
        """The XSLT 1.0 default priority for this rule's pattern."""
        pattern = self.match.strip()
        if not pattern:
            return -1.0
        last_step = pattern.rsplit("/", 1)[-1]
        if last_step in ("*", "@*", "node()", "text()"):
            return -0.5
        if "[" in pattern or "/" in pattern:
            return 0.5
        return 0.0

    def effective_priority(self) -> float:
        return self.priority if self.priority is not None else self.default_priority()


@dataclass
class Stylesheet:
    """A parsed stylesheet: output options plus its template rules."""

    templates: list[TemplateRule] = field(default_factory=list)
    named_templates: dict[str, TemplateRule] = field(default_factory=dict)
    output_method: str = "xml"
    output_indent: bool = False
    strip_space: bool = True
    global_variables: dict[str, str] = field(default_factory=dict)

    def add_template(self, rule: TemplateRule) -> None:
        if rule.name:
            self.named_templates[rule.name] = rule
        if rule.match:
            self.templates.append(rule)

    def rules_for_mode(self, mode: str = "") -> list[TemplateRule]:
        """Matching rules of ``mode``, most specific first."""
        rules = [rule for rule in self.templates if rule.mode == mode]
        return sorted(rules, key=lambda rule: rule.effective_priority(), reverse=True)
