"""XSLT substrate (the transforming half of the Xalan substitute).

In U-P2P, XSLT stylesheets applied to a community schema *generate the
application*: the Create form, the Search form and the View page
(paper Fig. 1 and Fig. 2).  This package implements the XSLT subset
those stylesheets need:

* template rules with match patterns and priorities,
* ``apply-templates``, ``call-template``, ``for-each``,
* ``value-of``, ``text``, ``element``, ``attribute``, ``copy``,
  ``copy-of``,
* ``if`` and ``choose``/``when``/``otherwise``,
* ``variable`` and ``with-param``/``param`` (string values),
* ``sort`` (lexicographic) and the ``html``/``xml``/``text`` output
  methods.
"""

from repro.xslt.engine import Transformer, transform
from repro.xslt.errors import XSLTError
from repro.xslt.html import render_html
from repro.xslt.model import Stylesheet, TemplateRule
from repro.xslt.parser import parse_stylesheet, parse_stylesheet_text

__all__ = [
    "Transformer",
    "transform",
    "Stylesheet",
    "TemplateRule",
    "XSLTError",
    "parse_stylesheet",
    "parse_stylesheet_text",
    "render_html",
]
