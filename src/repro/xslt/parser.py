"""Parse XSLT stylesheet documents into the stylesheet model."""

from __future__ import annotations

from pathlib import Path
from typing import Union

from repro.xmlkit.dom import Document, Element, XSLT_NAMESPACE
from repro.xmlkit.errors import XMLParseError
from repro.xmlkit.parser import parse as parse_xml
from repro.xslt.errors import XSLTParseError
from repro.xslt.model import Stylesheet, TemplateRule

_TRUE_VALUES = ("yes", "true", "1")


def parse_stylesheet_text(text: str) -> Stylesheet:
    """Parse an XSLT stylesheet from its textual form."""
    try:
        document = parse_xml(text, check_namespaces=False, keep_whitespace_text=True)
    except XMLParseError as error:
        raise XSLTParseError(f"stylesheet is not well-formed XML: {error}") from error
    return parse_stylesheet(document)


def parse_stylesheet_file(path: Union[str, Path]) -> Stylesheet:
    """Parse the stylesheet file at ``path``."""
    return parse_stylesheet_text(Path(path).read_text(encoding="utf-8"))


def parse_stylesheet(document: Union[Document, Element]) -> Stylesheet:
    """Parse a pre-parsed XML document into a :class:`Stylesheet`."""
    root = document.root if isinstance(document, Document) else document
    if root.local_name not in ("stylesheet", "transform"):
        raise XSLTParseError(
            f"expected an <xsl:stylesheet> document, found <{root.local_name}>"
        )
    if root.namespace not in (None, XSLT_NAMESPACE):
        raise XSLTParseError(f"unexpected stylesheet namespace {root.namespace!r}")
    stylesheet = Stylesheet()
    for child in root.children:
        name = child.local_name
        if name == "template":
            stylesheet.add_template(_parse_template(child))
        elif name == "output":
            stylesheet.output_method = child.get("method", "xml")
            stylesheet.output_indent = child.get("indent", "no") in _TRUE_VALUES
        elif name == "strip-space":
            stylesheet.strip_space = True
        elif name == "preserve-space":
            stylesheet.strip_space = False
        elif name in ("variable", "param"):
            variable_name = child.get("name", "")
            if not variable_name:
                raise XSLTParseError("top-level xsl:variable is missing a name")
            stylesheet.global_variables[variable_name] = child.get(
                "select", ""
            ).strip("'\"") or child.text_content().strip()
        elif name in ("import", "include"):
            raise XSLTParseError("xsl:import / xsl:include are not supported")
        else:
            # Comments, attribute-sets etc. are ignored; unknown top-level
            # literal elements are an authoring error worth reporting.
            if _is_xsl(child):
                raise XSLTParseError(f"unsupported top-level instruction <xsl:{name}>")
    if not stylesheet.templates and not stylesheet.named_templates:
        raise XSLTParseError("stylesheet defines no templates")
    return stylesheet


def _parse_template(node: Element) -> TemplateRule:
    match = node.get("match", "")
    name = node.get("name", "")
    if not match and not name:
        raise XSLTParseError("xsl:template needs a 'match' pattern or a 'name'")
    priority_text = node.get("priority")
    params = [child.get("name", "") for child in node.children
              if _is_xsl(child) and child.local_name == "param"]
    rule = TemplateRule(
        match=match,
        name=name,
        priority=float(priority_text) if priority_text else None,
        mode=node.get("mode", ""),
        params=[param for param in params if param],
        body=[child for child in node.children
              if not (_is_xsl(child) and child.local_name == "param")],
        body_text=node.text,
    )
    return rule


def _is_xsl(node: Element) -> bool:
    """True if the element is an XSLT instruction (by namespace or prefix)."""
    if node.namespace == XSLT_NAMESPACE:
        return True
    return node.prefix == "xsl"
