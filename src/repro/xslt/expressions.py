"""Expression evaluation for ``select`` and ``test`` attributes.

This is the value-expression half of XPath (the location-path half lives
in :mod:`repro.xmlkit.xpath`).  Supported forms:

* location paths (delegated to :class:`repro.xmlkit.xpath.XPath`),
* ``.`` (the context node) and ``@attr``,
* string literals (``'text'`` / ``"text"``) and numbers,
* variable references ``$name``,
* functions: ``concat``, ``name``, ``local-name``, ``position``,
  ``last``, ``count``, ``string-length``, ``normalize-space``, ``not``,
  ``contains``, ``starts-with``, ``translate``, ``substring``,
* comparisons ``=``, ``!=``, ``<``, ``>``, ``<=``, ``>=`` and the
  boolean connectives ``and`` / ``or``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.xmlkit.dom import Element
from repro.xmlkit.errors import XPathError
from repro.xmlkit.xpath import XPath
from repro.xslt.errors import XSLTRuntimeError

Value = Union[str, float, bool, list]


@dataclass
class EvalContext:
    """The dynamic context of one expression evaluation."""

    node: Element
    position: int = 1
    size: int = 1
    variables: dict[str, str] = field(default_factory=dict)

    def with_node(self, node: Element, position: int, size: int) -> "EvalContext":
        return EvalContext(node=node, position=position, size=size, variables=self.variables)


_NUMBER_RE = re.compile(r"^-?\d+(\.\d+)?$")
_FUNCTION_RE = re.compile(r"^([a-zA-Z][\w-]*)\((.*)\)$", re.DOTALL)


def evaluate(expression: str, context: EvalContext) -> Value:
    """Evaluate ``expression`` and return a string, number, boolean or node list."""
    expression = expression.strip()
    if not expression:
        return ""
    lowered = _split_top_level(expression, " or ")
    if len(lowered) > 1:
        return any(to_boolean(evaluate(part, context)) for part in lowered)
    parts = _split_top_level(expression, " and ")
    if len(parts) > 1:
        return all(to_boolean(evaluate(part, context)) for part in parts)
    for operator in ("!=", "<=", ">=", "=", "<", ">"):
        sides = _split_top_level(expression, operator)
        if len(sides) == 2:
            return _compare(evaluate(sides[0], context), evaluate(sides[1], context), operator)
    return _evaluate_primary(expression, context)


def evaluate_string(expression: str, context: EvalContext) -> str:
    """Evaluate and coerce to a string."""
    return to_string(evaluate(expression, context))


def evaluate_boolean(expression: str, context: EvalContext) -> bool:
    """Evaluate and coerce to a boolean."""
    return to_boolean(evaluate(expression, context))


def evaluate_nodes(expression: str, context: EvalContext) -> list[Union[Element, str]]:
    """Evaluate an expression expected to produce a node set."""
    value = evaluate(expression, context)
    if isinstance(value, list):
        return value
    if value == "":
        return []
    return [to_string(value)]


# ----------------------------------------------------------------------
def _evaluate_primary(expression: str, context: EvalContext) -> Value:
    expression = expression.strip()
    if (expression.startswith("'") and expression.endswith("'")) or (
        expression.startswith('"') and expression.endswith('"')
    ):
        return expression[1:-1]
    if _NUMBER_RE.match(expression):
        return float(expression)
    if expression.startswith("$"):
        name = expression[1:]
        if name not in context.variables:
            raise XSLTRuntimeError(f"reference to undefined variable ${name}")
        return context.variables[name]
    match = _FUNCTION_RE.match(expression)
    if match and _balanced(match.group(2)):
        return _call_function(match.group(1), _split_arguments(match.group(2)), context)
    # Otherwise: a location path.
    try:
        return XPath(expression).select(context.node)
    except XPathError as error:
        raise XSLTRuntimeError(f"cannot evaluate expression {expression!r}: {error}") from error


def _call_function(name: str, arguments: list[str], context: EvalContext) -> Value:
    if name == "concat":
        return "".join(evaluate_string(argument, context) for argument in arguments)
    if name == "name" or name == "local-name":
        if arguments and arguments[0].strip():
            nodes = evaluate_nodes(arguments[0], context)
            node = nodes[0] if nodes else None
            if isinstance(node, Element):
                return node.local_name if name == "local-name" else node.tag
            return ""
        return context.node.local_name if name == "local-name" else context.node.tag
    if name == "position":
        return float(context.position)
    if name == "last":
        return float(context.size)
    if name == "count":
        return float(len(evaluate_nodes(arguments[0], context))) if arguments else 0.0
    if name == "string-length":
        target = evaluate_string(arguments[0], context) if arguments else _node_string(context.node)
        return float(len(target))
    if name == "normalize-space":
        target = evaluate_string(arguments[0], context) if arguments and arguments[0].strip() else _node_string(context.node)
        return " ".join(target.split())
    if name == "string":
        return evaluate_string(arguments[0], context) if arguments else _node_string(context.node)
    if name == "not":
        return not to_boolean(evaluate(arguments[0], context)) if arguments else True
    if name == "true":
        return True
    if name == "false":
        return False
    if name == "contains":
        return evaluate_string(arguments[1], context) in evaluate_string(arguments[0], context)
    if name == "starts-with":
        return evaluate_string(arguments[0], context).startswith(evaluate_string(arguments[1], context))
    if name == "substring":
        text = evaluate_string(arguments[0], context)
        start = int(to_number(evaluate(arguments[1], context))) - 1
        if len(arguments) > 2:
            length = int(to_number(evaluate(arguments[2], context)))
            return text[max(start, 0):max(start, 0) + length]
        return text[max(start, 0):]
    if name == "translate":
        text = evaluate_string(arguments[0], context)
        source = evaluate_string(arguments[1], context)
        target = evaluate_string(arguments[2], context)
        table = {ord(s): (target[i] if i < len(target) else None) for i, s in enumerate(source)}
        return text.translate(table)
    raise XSLTRuntimeError(f"unsupported XPath function {name}()")


# ----------------------------------------------------------------------
# Coercions
# ----------------------------------------------------------------------
def to_string(value: Value) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return str(int(value)) if value.is_integer() else str(value)
    if isinstance(value, list):
        if not value:
            return ""
        first = value[0]
        return _node_string(first) if isinstance(first, Element) else str(first)
    return str(value)


def to_boolean(value: Value) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, float):
        return value != 0
    if isinstance(value, list):
        return bool(value)
    return bool(value)


def to_number(value: Value) -> float:
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, float):
        return value
    try:
        return float(to_string(value))
    except ValueError:
        return float("nan")


def _node_string(node: Union[Element, str]) -> str:
    return node.text_content().strip() if isinstance(node, Element) else str(node)


def _compare(left: Value, right: Value, operator: str) -> bool:
    if operator in ("=", "!="):
        left_values = _comparison_strings(left)
        right_values = _comparison_strings(right)
        matched = any(l == r for l in left_values for r in right_values)
        return matched if operator == "=" else not matched
    left_number = to_number(left if not isinstance(left, list) else to_string(left))
    right_number = to_number(right if not isinstance(right, list) else to_string(right))
    if operator == "<":
        return left_number < right_number
    if operator == ">":
        return left_number > right_number
    if operator == "<=":
        return left_number <= right_number
    return left_number >= right_number


def _comparison_strings(value: Value) -> list[str]:
    if isinstance(value, list):
        return [_node_string(item) for item in value] or [""]
    return [to_string(value)]


# ----------------------------------------------------------------------
# Tokenization helpers (quote- and parenthesis-aware splitting)
# ----------------------------------------------------------------------
def _split_top_level(expression: str, separator: str) -> list[str]:
    parts: list[str] = []
    depth = 0
    quote: Optional[str] = None
    buffer = ""
    index = 0
    while index < len(expression):
        char = expression[index]
        if quote:
            if char == quote:
                quote = None
            buffer += char
            index += 1
            continue
        if char in ("'", '"'):
            quote = char
            buffer += char
            index += 1
            continue
        if char in "([":
            depth += 1
        elif char in ")]":
            depth -= 1
        if depth == 0 and expression.startswith(separator, index):
            # Avoid splitting '!=' when looking for '='.
            if separator == "=" and index > 0 and expression[index - 1] in "!<>":
                buffer += char
                index += 1
                continue
            parts.append(buffer)
            buffer = ""
            index += len(separator)
            continue
        buffer += char
        index += 1
    parts.append(buffer)
    return [part.strip() for part in parts] if len(parts) > 1 else [expression]


def _split_arguments(body: str) -> list[str]:
    if not body.strip():
        return []
    arguments: list[str] = []
    depth = 0
    quote: Optional[str] = None
    buffer = ""
    for char in body:
        if quote:
            if char == quote:
                quote = None
            buffer += char
            continue
        if char in ("'", '"'):
            quote = char
            buffer += char
            continue
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
        if char == "," and depth == 0:
            arguments.append(buffer.strip())
            buffer = ""
            continue
        buffer += char
    arguments.append(buffer.strip())
    return arguments


def _balanced(text: str) -> bool:
    depth = 0
    quote: Optional[str] = None
    for char in text:
        if quote:
            if char == quote:
                quote = None
            continue
        if char in ("'", '"'):
            quote = char
        elif char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
            if depth < 0:
                return False
    return depth == 0 and quote is None
